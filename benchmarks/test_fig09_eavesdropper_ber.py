"""Fig. 9: eavesdropper BER ~50% at every one of the 18 locations.

"At all locations, the eavesdropper's BER is nearly 50%, which makes its
decoding task no more successful than random guessing.  The low variance
in the CDF shows that an eavesdropper's BER is independent of its
location" -- the operational consequence of eq. 7.
"""

import numpy as np

from repro.experiments.metrics import summarize
from repro.experiments.report import ExperimentReport
from repro.experiments.waveform_lab import PassiveLab


def test_fig09_eavesdropper_ber_all_locations(benchmark):
    def run():
        lab = PassiveLab(seed=99)
        return lab.ber_by_location(jam_margin_db=20.0, n_packets=40)

    ber_by_location = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(ber_by_location.values())
    stats = summarize(values)

    report = ExperimentReport("Fig. 9 -- eavesdropper BER across all 18 locations")
    report.add("mean BER over locations", "~0.50", f"{stats.mean:.3f}")
    report.add(
        "per-location spread (min-max)",
        "nearly 50% everywhere",
        f"{stats.minimum:.3f}-{stats.maximum:.3f}",
    )
    report.add(
        "closest location (20 cm)",
        "~0.50",
        f"{ber_by_location[1]:.3f}",
        "even the nearest eavesdropper learns nothing",
    )
    report.print()

    assert stats.mean > 0.44
    assert stats.minimum > 0.40
    # Location independence: spread well under the 0.5 scale.
    assert stats.maximum - stats.minimum < 0.08
