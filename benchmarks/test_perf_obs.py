"""Overhead benchmarks of the observability layer.

Tracing is opt-in, but the metrics hooks (``counter_inc`` in the result
stores, the transport, the kernel registry) are *always on* -- so their
cost must stay at dict-update scale, and a traced fleet campaign must
run within a couple of percent of an untraced one.  The paired
``fleet_campaign_untraced`` / ``fleet_campaign_traced`` entries in
``BENCH_baseline.json`` pin that delta; ``benchmarks/compare.py`` gates
both against regression like every other hot path.
"""

from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import Scenario
from repro.campaigns.store import SQLiteStore
from repro.obs.history import load_history, record_run
from repro.obs.metrics import counter_inc, observed_call, take_global
from repro.obs.progress import ProgressPublisher
from repro.obs.trace import Tracer

#: The fleet workload both campaign benches run: a 100-patient physio
#: cohort in four 25-patient shards, in memory (no cache I/O noise).
_SCENARIO = Scenario(
    name="bench-obs-fleet",
    kind="fleet",
    fleet_task="physio",
    n_patients=100,
    n_trials=1,
    chunk_size=25,
)


def test_perf_fleet_campaign_untraced(benchmark):
    """Baseline: the fleet campaign with no tracer attached."""

    def run():
        return CampaignRunner(_SCENARIO, persist=False).run()

    result = benchmark(run)
    assert result.total_units == 4
    assert result.computed_units == 4


def test_perf_fleet_campaign_traced(benchmark, tmp_path):
    """The same campaign traced: manifest + four unit spans per run.

    Compare against ``fleet_campaign_untraced``: the delta is the whole
    per-run cost of tracing (target < 2%).
    """
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        tracer = Tracer(
            tmp_path, _SCENARIO.name, run_id=f"round-{counter['n']}"
        )
        return CampaignRunner(_SCENARIO, persist=False, tracer=tracer).run()

    result = benchmark(run)
    assert result.total_units == 4
    assert result.computed_units == 4


def test_perf_counter_inc(benchmark):
    """The always-on hook: 10k counter updates (one dict op each)."""

    def run():
        for _ in range(10_000):
            counter_inc("bench.obs.counter")
        return take_global()

    payload = benchmark(run)
    assert payload["counters"]["bench.obs.counter"] == 10_000


def test_perf_observed_call(benchmark):
    """The worker wrapper: 1k observed evaluations of a trivial unit."""

    def unit(value):
        return value

    def run():
        for index in range(1_000):
            observed_call(unit, index)
        return take_global()

    benchmark(run)


def test_perf_tracer_emit(benchmark, tmp_path):
    """Span emission: 1k unit events serialized to one JSONL trace."""
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        tracer = Tracer(tmp_path, "bench-emit", run_id=f"e-{counter['n']}")
        tracer.start_run({"scenario": "bench-emit"})
        for index in range(1_000):
            tracer.emit(
                "unit",
                key=f"unit-{index:04d}",
                coords={"chunk": index},
                status="computed",
                queue_s=0.0,
                exec_s=0.001,
                flush_s=0.0001,
                pid=1234,
                result_bytes=600,
            )
        tracer.finish(total_units=1_000)
        return tracer.path.stat().st_size

    size = benchmark(run)
    assert size > 100_000


def test_perf_progress_publish(benchmark, tmp_path):
    """100 forced snapshot publishes through a shared SQLite store.

    The live path workers hit between units: serialize one snapshot
    dict, upsert one row.  Throttling normally caps this at one write
    per interval; ``force=True`` benches the write itself.
    """
    store = SQLiteStore(tmp_path)
    publisher = ProgressPublisher(
        store, "bench-hash", "bench-worker",
        role="worker", total_units=1_000, scenario="bench-obs-fleet",
    )

    def run():
        written = 0
        for _ in range(100):
            publisher.advance(done=1, computed=1)
            written += publisher.publish(force=True)
        return written

    written = benchmark(run)
    assert written == 100
    store.close()


def test_perf_history_record(benchmark, tmp_path):
    """Indexing one finished run into ``runs/history.jsonl``.

    The cost every traced run pays at ``Tracer.finish``: re-read its
    trace, summarize, append one fsynced JSON line.
    """
    tracer = Tracer(tmp_path, "bench-history", run_id="bench-history-run")
    tracer.start_run({"scenario": "bench-history"})
    for index in range(100):
        tracer.emit(
            "unit", key=f"unit-{index:04d}", status="computed",
            queue_s=0.0, exec_s=0.001, flush_s=0.0001,
        )
    tracer.finish(total_units=100)

    def run():
        return record_run(tmp_path, tracer.run_dir)

    entry = benchmark(run)
    assert entry["run_id"] == "bench-history-run"
    assert load_history(tmp_path)[-1]["run_id"] == "bench-history-run"
