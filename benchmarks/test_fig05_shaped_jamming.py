"""Fig. 5: shaping the jamming profile to match the IMD's FSK profile.

The paper's point: a constant-profile jammer wastes power on frequencies
the FSK receiver never looks at; the shaped jammer "has increased jamming
power in frequencies that matter for decoding".  We measure both the
spectral concentration and its operational consequence -- at equal total
power the shaped jam inflicts a higher BER on the eavesdropper, and the
S6(a) band-pass-filter attack cannot claw the difference back.
"""

import numpy as np

from repro.adversary.eavesdropper import Eavesdropper
from repro.adversary.strategies import FilterBankStrategy, TreatJammingAsNoise
from repro.core.jamming import ShapedJammer
from repro.experiments.report import ExperimentReport
from repro.phy.fsk import FSKModulator
from repro.phy.signal import Waveform
from repro.phy.spectrum import band_power_fraction


def _in_band(waveform) -> float:
    return band_power_fraction(waveform, 30e3, 70e3) + band_power_fraction(
        waveform, -70e3, -30e3
    )


def _mean_ber(jammer, strategy, rng, n_packets=25, sir_db=-3.0):
    total = 0.0
    for _ in range(n_packets):
        bits = rng.integers(0, 2, size=1000)
        signal = FSKModulator().modulate(bits)
        jam = jammer.generate(len(signal), power=10 ** (-sir_db / 10.0))
        mixed = Waveform(signal.samples + jam.samples, signal.sample_rate)
        total += Eavesdropper(strategy=strategy).attack(mixed, bits).bit_error_rate
    return total / n_packets


def test_fig05_shaped_vs_constant_jamming(benchmark):
    def run():
        rng = np.random.default_rng(55)
        shaped = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        flat = ShapedJammer.flat(300e3, 600e3, rng=rng)
        in_band = {
            "shaped": _in_band(shaped.generate(32768)),
            "flat": _in_band(flat.generate(32768)),
        }
        ber = {
            ("shaped", "naive"): _mean_ber(shaped, TreatJammingAsNoise(), rng),
            ("flat", "naive"): _mean_ber(flat, TreatJammingAsNoise(), rng),
            ("shaped", "filter"): _mean_ber(shaped, FilterBankStrategy(), rng),
        }
        return in_band, ber

    in_band, ber = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport("Fig. 5 -- shaped vs. constant jamming profile")
    report.add(
        "jam power near the FSK tones, shaped",
        "concentrated on the tones",
        f"{100 * in_band['shaped']:.0f}%",
    )
    report.add(
        "jam power near the FSK tones, constant",
        "spread over 300 kHz",
        f"{100 * in_band['flat']:.0f}%",
    )
    report.add(
        "eavesdropper BER at equal power (-3 dB SIR)",
        "shaped > constant",
        f"shaped {ber[('shaped', 'naive')]:.3f} vs flat {ber[('flat', 'naive')]:.3f}",
    )
    report.add(
        "band-pass-filter attack vs shaped jam",
        "no gain (power sits on the tones)",
        f"BER {ber[('shaped', 'filter')]:.3f}",
    )
    report.print()

    assert in_band["shaped"] > 1.3 * in_band["flat"]
    assert ber[("shaped", "naive")] > 1.1 * ber[("flat", "naive")]
    assert ber[("shaped", "filter")] > 0.8 * ber[("shaped", "naive")]
