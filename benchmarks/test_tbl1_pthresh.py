"""Table 1 and the S10.1(c) calibrations: P_thresh and b_thresh.

* b_thresh: with jamming off, packets that show header bit errors at the
  shield yet are accepted by the IMD are rare (paper: 3 in 5000, <= 2
  flips -> b_thresh = 4).
* P_thresh / Table 1: with jamming on and the adversary at location 1,
  sweep its TX power and record the RSSI of every packet that still
  elicited an IMD response (paper: min -11.1 dBm, avg -4.5 dBm,
  std 3.5 dBm); P_thresh is set 3 dB below the minimum.
"""

import numpy as np

from repro.experiments.calibration import calibrate_b_thresh, calibrate_p_thresh
from repro.experiments.report import ExperimentReport


def test_tbl1_pthresh_and_bthresh_calibration(benchmark):
    def run():
        b = calibrate_b_thresh(packets_per_location=30)
        p = calibrate_p_thresh(trials_per_power=25)
        return b, p

    b, p = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport("Table 1 / S10.1(c) -- jamming calibration")
    report.add(
        "errored-at-shield yet IMD-accepted packets",
        "3 / 5000",
        f"{b.errored_but_accepted} / {b.total_packets}",
        "rare because the shield hears far better than the IMD",
    )
    report.add("max header flips among those", "2", str(b.max_flips_observed))
    report.add("recommended b_thresh", "4", str(b.recommended_b_thresh))
    assert p.stats is not None, "power sweep found no successful packets"
    report.add(
        "min successful adversary RSSI", "-11.1 dBm", f"{p.stats.minimum:.1f} dBm"
    )
    report.add(
        "avg successful adversary RSSI", "-4.5 dBm", f"{p.stats.mean:.1f} dBm"
    )
    report.add("std of successful RSSI", "3.5 dBm", f"{p.stats.std:.1f} dBm")
    report.add("P_thresh (min - 3 dB)", "~ -14 dBm", f"{p.p_thresh_dbm:.1f} dBm")
    report.print()

    # Shape requirements rather than absolute-value matches:
    # the dangerous-miss rate is per-mille or less, flips stay tiny, and
    # the calibrated threshold sits within a few dB of the paper's.
    assert b.errored_but_accepted <= max(5, b.total_packets // 100)
    assert b.max_flips_observed <= 4
    assert b.recommended_b_thresh >= 4
    assert -25.0 < p.stats.minimum < -5.0
    assert p.stats.std < 8.0
