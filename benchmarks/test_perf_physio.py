"""Throughput benchmarks of the physiological telemetry hot paths.

The physio scenarios push whole record blocks through four stages --
ECG synthesis, codec quantization, batched eavesdropping, and the
bits-to-vitals inference -- so each stage gets a regression guard here,
plus one end-to-end record batch through :class:`PhysioLab`.  The
``benchmarks/compare.py`` gate runs this file alongside the DSP
primitives.
"""

import numpy as np

from repro.adversary.eavesdropper import Eavesdropper
from repro.experiments.physio_lab import PhysioLab
from repro.phy.fsk import FSKModulator
from repro.physio.codec import WaveformCodec
from repro.physio.ecg import ECGConfig, ECGGenerator
from repro.physio.inference import AttackerInference, estimate_heart_rate
from repro.protocol.commands import CommandType
from repro.protocol.packets import Packet

_RNG = np.random.default_rng(321)
_GENERATOR = ECGGenerator(ECGConfig())
_CODEC = WaveformCodec()
_BATCH = _GENERATOR.sample_batch(16, seed=5)
_WINDOWS = _BATCH.samples.reshape(-1, _CODEC.window_samples)
_MASKS = _BATCH.beat_mask.reshape(-1, _CODEC.window_samples)
_PAYLOADS = _CODEC.encode_batch(_WINDOWS, _MASKS)

_TRUE_BITS = _RNG.integers(0, 2, size=(16, 256))
_NOISY = FSKModulator().modulate_batch(_TRUE_BITS)
_NOISY = _NOISY + 0.4 * (
    _RNG.standard_normal(_NOISY.shape) + 1j * _RNG.standard_normal(_NOISY.shape)
)

_INFERENCE = AttackerInference(_CODEC)
_PACKET_CODEC = _INFERENCE.packet_codec
_FRAMES = np.stack([
    _PACKET_CODEC.encode(
        Packet(bytes(range(10)), CommandType.TELEMETRY, i % 256,
               _PAYLOADS[i].tobytes())
    )
    for i in range(16)
])
_CORRUPTED = (_FRAMES ^ (_RNG.random(_FRAMES.shape) < 0.1))[None, :, :]


def test_perf_ecg_batch_generation(benchmark):
    batch = benchmark(_GENERATOR.sample_batch, 16, 5)
    assert batch.samples.shape == (16, 768)


def test_perf_codec_encode_batch(benchmark):
    payloads = benchmark(_CODEC.encode_batch, _WINDOWS, _MASKS)
    assert payloads.shape == (_WINDOWS.shape[0], _CODEC.payload_size)


def test_perf_codec_decode_batch(benchmark):
    samples, masks = benchmark(_CODEC.decode_batch, _PAYLOADS)
    assert samples.shape == _WINDOWS.shape


def test_perf_attack_batch(benchmark):
    result = benchmark(Eavesdropper().attack_batch, _NOISY, _TRUE_BITS)
    assert result.bits.shape == _TRUE_BITS.shape


def test_perf_hr_estimation(benchmark):
    hr = benchmark(estimate_heart_rate, _BATCH.samples[0], 120.0)
    assert 40.0 <= hr <= 200.0


def test_perf_inference_record(benchmark):
    """Bits-to-vitals on one 16-packet record at 10% BER."""
    results = benchmark(_INFERENCE.infer_batch, _CORRUPTED)
    assert len(results) == 1


def test_perf_physio_record_batch(benchmark):
    def run():
        return PhysioLab(seed=99).run_records(
            4, location_index=2, shield_present=True
        )

    result = benchmark(run)
    assert result.n_records == 4
