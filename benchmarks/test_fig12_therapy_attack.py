"""Fig. 12: unauthorized therapy-modification attack.

Paper rows (probability the therapy changes, locations 1..14):
  shield absent : 1 1 1 1 0.95 0.84 0.78 0.70 0.02 0.01 0 0 0 0
  shield present: 0 everywhere

The paper found "no statistical difference in success rate between
commands that modify the patient's treatment and commands that trigger
the IMD to transmit" -- this benchmark checks that equivalence too.
"""

from benchmarks.conftest import trials_per_location
from repro.experiments.report import ExperimentReport
from benchmarks.test_fig11_battery_attack import LOCATIONS, _success_curve

PAPER_ABSENT = {
    1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 0.95, 6: 0.84, 7: 0.78, 8: 0.70,
    9: 0.02, 10: 0.01, 11: 0.0, 12: 0.0, 13: 0.0, 14: 0.0,
}


def test_fig12_therapy_modification_attack(benchmark):
    n = trials_per_location()

    def run():
        absent = _success_curve(False, n, "therapy", seed=1200)
        present = _success_curve(True, n, "therapy", seed=2200)
        return absent, present

    absent, present = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport(
        f"Fig. 12 -- P(therapy changed) per location, {n} trials each"
    )
    for loc in LOCATIONS:
        report.add(
            f"location {loc:2d}",
            f"absent {PAPER_ABSENT[loc]:.2f} / present 0.00",
            f"absent {absent[loc]:.2f} / present {present[loc]:.2f}",
        )
    report.print()

    assert all(absent[loc] >= 0.9 for loc in range(1, 6))
    assert absent[8] > 0.2
    assert all(absent[loc] <= 0.2 for loc in range(9, 15))
    assert all(present[loc] <= 0.05 for loc in LOCATIONS)
