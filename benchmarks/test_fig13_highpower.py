"""Fig. 13: the 100x-power adversary, with and without the shield.

Paper findings (locations 1..18):
* shield absent: responses elicited out to 27 m (location 13, p ~ 0.1),
  including non-line-of-sight locations;
* shield present: success only from nearby line-of-sight locations
  (< 5 m; probabilities ~0.89/0.87/0.74/0.72 then ~0.1/0.3), zero beyond;
* the shield raises an alarm for the high-powered transmissions it
  detects above P_thresh, covering every location where the attack could
  succeed.
"""

from benchmarks.conftest import trials_per_location
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import highpower_sweep
from repro.experiments.testbed import AttackTestbed

LOCATIONS = tuple(range(1, 19))


def _highpower_curves(shield_present: bool, n_trials: int, seed: int):
    results = highpower_sweep(
        shield_present=shield_present,
        n_trials=n_trials,
        location_indices=LOCATIONS,
        seed=seed,
    )
    success = {loc: r.success_probability for loc, r in results.items()}
    alarm = {loc: r.alarm_probability for loc, r in results.items()}
    return success, alarm


def test_fig13_highpower_adversary(benchmark):
    n = trials_per_location()

    def run():
        absent, _ = _highpower_curves(False, n, seed=1300)
        present, alarms = _highpower_curves(True, n, seed=2300)
        return absent, present, alarms

    absent, present, alarms = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport(
        f"Fig. 13 -- 100x-power adversary, {n} trials per location"
    )
    for loc in LOCATIONS:
        report.add(
            f"location {loc:2d}",
            "absent: far reach / present: <5 m LOS / alarm on strong",
            f"absent {absent[loc]:.2f}  present {present[loc]:.2f}  "
            f"alarm {alarms[loc]:.2f}",
        )
    report.print()

    geometry = AttackTestbed(location_index=1, seed=0).budget.geometry

    # Shield absent: success deep into the room, including NLOS.
    assert all(absent[loc] >= 0.85 for loc in range(1, 12))
    assert absent[13] > 0.02  # the 27 m NLOS edge (paper: 0.1)
    assert all(absent[loc] <= 0.2 for loc in (14, 15, 16, 17, 18))

    # Shield present: only nearby line-of-sight wins, nothing far.
    assert present[1] > 0.7
    successful = [loc for loc in LOCATIONS if present[loc] > 0.05]
    for loc in successful:
        location = geometry.location(loc)
        assert location.line_of_sight
        assert location.distance_m < 5.0
    assert all(present[loc] <= 0.05 for loc in range(7, 19))

    # Every location where the attack ever succeeded also alarmed.
    for loc in LOCATIONS:
        if present[loc] > 0.05:
            assert alarms[loc] >= present[loc] * 0.9
    # Nearby unsuccessful high-power attempts still alarm (paper: e.g.
    # location 6).
    assert alarms[5] > 0.5 or alarms[6] > 0.3
