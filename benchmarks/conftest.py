"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (S10-S11) and prints a paper-vs-measured report.  Trial counts
default to a size that keeps the whole suite under a few minutes; set
``REPRO_BENCH_TRIALS`` to 100 to match the paper's per-location count
exactly.
"""

from __future__ import annotations

import os

import pytest


def trials_per_location(default: int = 40) -> int:
    """How many attack trials to run per location (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


@pytest.fixture
def n_trials() -> int:
    return trials_per_location()
