"""Fig. 8: the eavesdropper-vs-shield tradeoff over jamming power.

Sweeping the jamming power relative to the received IMD power:
* Fig. 8(a): at +20 dB the eavesdropper's BER reaches ~50% (random
  guessing);
* Fig. 8(b): at the same +20 dB the shield still decodes with ~0.2%
  packet loss, and loss climbs as jamming outgrows the cancellation.
"""

import numpy as np

from repro.experiments.report import ExperimentReport
from repro.experiments.waveform_lab import PassiveLab


def test_fig08_jamming_power_tradeoff(benchmark):
    margins = [0.0, 5.0, 10.0, 15.0, 20.0, 22.5, 25.0]

    def run():
        lab = PassiveLab(seed=88)
        return lab.tradeoff_sweep(margins, n_packets=80)

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport("Fig. 8 -- BER at eavesdropper / PER at shield vs jam power")
    for p in points:
        report.add(
            f"jam +{p.jam_margin_db:4.1f} dB over IMD power",
            "BER->0.5, PER low till ~20 dB",
            f"eve BER {p.eavesdropper_ber:.3f}  shield PER {p.shield_packet_loss:.4f}",
        )
    at_20 = next(p for p in points if p.jam_margin_db == 20.0)
    report.add(
        "operating point (+20 dB)",
        "BER ~0.50, PER ~0.002",
        f"BER {at_20.eavesdropper_ber:.3f}, PER {at_20.shield_packet_loss:.4f}",
    )
    report.print()

    bers = [p.eavesdropper_ber for p in points]
    # 8(a): BER grows with jamming power and saturates near 0.5.
    assert bers == sorted(bers) or max(
        abs(a - b) for a, b in zip(bers, sorted(bers))
    ) < 0.05
    assert at_20.eavesdropper_ber > 0.42
    # 8(b): the shield still decodes reliably at the operating point.
    assert at_20.shield_packet_loss <= 0.05
    # Below ~10 dB of jamming the eavesdropper still reads a lot.
    assert points[0].eavesdropper_ber < 0.25
