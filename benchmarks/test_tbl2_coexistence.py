"""Table 2: coexistence with legitimate users of the MICS band.

Paper rows:
* probability of jamming cross-traffic (GMSK radiosonde frames): 0
* probability of jamming packets that trigger the IMD: 1
* turn-around after the adversary stops: 270 +/- 23 us

The cross-traffic is modelled after the Vaisala RS92-AGP radiosonde the
paper uses, alternated with IMD-addressed packets from every location, as
in S11.
"""

import numpy as np

from benchmarks.conftest import trials_per_location
from repro.experiments.metrics import summarize
from repro.experiments.report import ExperimentReport
from repro.experiments.testbed import AttackTestbed, Placement
from repro.phy.gmsk import GMSKModulator
from repro.protocol.crc import bytes_to_bits
from repro.sim.radio import RadioDevice


class _Radiosonde(RadioDevice):
    def __init__(self, simulator, channel=0, name="radiosonde"):
        super().__init__(name, simulator, {channel})
        self.channel = channel
        self.modulator = GMSKModulator()

    def send_frame(self, payload: bytes):
        air = self._require_air()
        return air.transmit(
            source=self.name,
            channel=self.channel,
            tx_power_dbm=-16.0,
            bit_rate=self.modulator.config.bit_rate,
            bits=bytes_to_bits(payload),
            kind="packet",
            meta={"role": "cross-traffic"},
        )


def test_tbl2_coexistence(benchmark):
    rounds = max(6, trials_per_location() // 6)
    location_indices = (1, 3, 5, 7, 9, 11)

    def run():
        rng = np.random.default_rng(77)
        cross_jammed = 0
        cross_total = 0
        imd_jammed = 0
        imd_total = 0
        turnarounds: list[float] = []
        for loc in location_indices:
            bed = AttackTestbed(
                location_index=loc, shield_present=True, seed=500 + loc
            )
            sonde = _Radiosonde(bed.simulator)
            bed.links.place(
                Placement("radiosonde", location=bed.budget.geometry.location(loc))
            )
            bed.air.register(sonde)
            for _ in range(rounds):
                # Alternate: one cross-traffic frame, one IMD-addressed
                # packet (the S11 methodology).
                jams_before = len(bed.air.transmissions_by("shield", kind="jam"))
                sonde.send_frame(bytes(rng.integers(0, 256, size=30)))
                bed.simulator.run(until=bed.simulator.now + 0.05)
                cross_total += 1
                cross_jammed += (
                    len(bed.air.transmissions_by("shield", kind="jam")) > jams_before
                )
                outcome = bed.attack_once(bed.interrogate_packet())
                imd_total += 1
                imd_jammed += outcome.shield_jammed
            turnarounds.extend(bed.shield.turnaround_samples_s)
        return cross_jammed, cross_total, imd_jammed, imd_total, turnarounds

    cross_jammed, cross_total, imd_jammed, imd_total, turnarounds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    stats = summarize([t * 1e6 for t in turnarounds])

    report = ExperimentReport("Table 2 -- coexistence with MICS cross-traffic")
    report.add(
        "P(jam cross-traffic)", "0", f"{cross_jammed}/{cross_total}"
    )
    report.add(
        "P(jam packets that trigger IMD)", "1", f"{imd_jammed}/{imd_total}"
    )
    report.add("turn-around, average", "270 us", f"{stats.mean:.0f} us")
    report.add("turn-around, std dev", "23 us", f"{stats.std:.0f} us")
    report.print()

    assert cross_jammed == 0
    assert imd_jammed == imd_total
    assert abs(stats.mean - 270.0) < 30.0
    assert stats.std < 60.0
