"""Throughput benchmarks of the live monitoring engine.

The acceptance bar for the live subsystem is sustained dispatch: a
ward-scale cohort at speedup 100 is 10,000 events per simulated-second
batch, so the engine's *unpaced* drain rate (TestClock -- pure
dispatch cost, no pacing sleeps) must sit comfortably above that.
Two entries pin it:

* ``live_engine_drain`` -- events/sec of the bare engine + alarm
  pipeline + event log, single process;
* ``live_fanout_100_subscribers`` -- hub flush cost with 100 bounded
  subscriber queues attached: the per-flush coalesced frame must stay
  one shared bytes object, so fan-out scales as pointer appends.

Both ride ``BENCH_baseline.json`` and ``compare.py``'s gate like every
other hot path.
"""

import asyncio

from repro.live.clock import TestClock
from repro.live.engine import LiveConfig, LiveEngine
from repro.live.events import EventLog, LiveEvent
from repro.live.serve import BroadcastHub

#: Ward-scale drain workload: 100 patients x 120 ticks plus bursts --
#: ~12k events per run, dominated by the vitals hot path.
_DRAIN_CONFIG = LiveConfig(
    n_patients=100,
    duration_s=120.0,
    telemetry_interval_s=1.0,
    attack_bursts=2,
    seed=17,
)


def test_perf_live_engine_drain(benchmark):
    """Unpaced dispatch: engine + alarms + canonical log, one core."""

    def run():
        engine = LiveEngine(
            _DRAIN_CONFIG, clock=TestClock(), event_log=EventLog()
        )
        asyncio.run(engine.run())
        return engine

    engine = benchmark(run)
    assert engine.finished
    assert engine.events_total > 12_000
    # The hard floor from the issue: >= 10k events/sec sustained.
    assert engine.snapshot()["events_per_s"] > 10_000


def test_perf_live_fanout_100_subscribers(benchmark):
    """Hub flush with 100 attached subscribers (frames/sec surrogate).

    One flush coalesces a full ward's vitals into one shared frame and
    offers it to every queue; at the default 10 Hz flush cadence the
    per-flush budget is 100 ms, and this path must be orders of
    magnitude under it.
    """
    hub = BroadcastHub()
    subscribers = [hub.subscribe() for _ in range(100)]
    events = [
        LiveEvent(float(i), i, "vitals", {"hr_bpm": 70.0 + i * 0.1})
        for i in range(100)
    ]

    def run():
        for event in events:
            hub.on_event(event)
        return hub.flush()

    delivered = benchmark(run)
    assert delivered == 100
    assert all(sub.frames for sub in subscribers)
