"""Fig. 10: packet loss at the decoding shield while it jams.

"When the shield is jamming, it experiences an average packet loss rate
of only 0.2% when receiving the IMD's packets" -- the jammer-cum-receiver
pays almost nothing for the confidentiality it buys.
"""

import numpy as np

from repro.experiments.metrics import empirical_cdf, summarize
from repro.experiments.report import ExperimentReport
from repro.experiments.waveform_lab import PassiveLab


def test_fig10_shield_packet_loss_cdf(benchmark):
    def run():
        lab = PassiveLab(seed=110)
        return lab.shield_loss_runs(jam_margin_db=20.0, n_runs=15, packets_per_run=150)

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(rates)

    report = ExperimentReport("Fig. 10 -- packet loss at the shield while jamming")
    report.add("mean packet loss", "~0.002", f"{stats.mean:.4f}")
    report.add("worst run", "< 0.025", f"{stats.maximum:.4f}")
    report.add(
        "runs with zero loss",
        "most",
        f"{sum(r == 0.0 for r in rates)}/{len(rates)}",
    )
    report.print()

    # The shape requirement: loss stays within the same order of
    # magnitude as the paper's 0.2%, far below unusable.
    assert stats.mean < 0.02
    assert stats.maximum < 0.06
