"""Fig. 4: the IMD's FSK power profile concentrates energy at +/-50 kHz.

The paper captures a Virtuoso transmission and shows "most of the energy
is concentrated around +/-50 KHz" of the 300 kHz channel.  We synthesise
the modelled FSK telemetry and measure the same profile.
"""

from repro.experiments.report import ExperimentReport
from repro.experiments.waveform_lab import fsk_profile_peaks


def test_fig04_fsk_power_profile(benchmark):
    peaks, tone_fraction = benchmark.pedantic(
        lambda: fsk_profile_peaks(n_bits=16384), rounds=1, iterations=1
    )

    report = ExperimentReport("Fig. 4 -- Virtuoso FSK frequency profile")
    report.add("lower spectral peak", "~ -50 kHz", f"{peaks[0] / 1e3:+.1f} kHz")
    report.add("upper spectral peak", "~ +50 kHz", f"{peaks[1] / 1e3:+.1f} kHz")
    report.add(
        "power within 25 kHz of the tones",
        "most of the energy",
        f"{100 * tone_fraction:.0f}%",
    )
    report.print()

    assert abs(peaks[0] + 50e3) < 8e3
    assert abs(peaks[1] - 50e3) < 8e3
    assert tone_fraction > 0.6
