"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table -- these quantify *why* the shield is configured the
way it is: the b_thresh = 4 operating point, the digital residual
canceller, the full 104-bit detection window, and the
antenna-placement insensitivity behind the wearability claim.
"""

from repro.experiments.ablation import (
    antenna_ratio_sweep,
    b_thresh_sweep,
    detection_window_sweep,
    digital_cancellation_sweep,
)
from repro.experiments.report import ExperimentReport


def test_ablation_b_thresh(benchmark):
    points = benchmark.pedantic(
        lambda: b_thresh_sweep(n_trials=600), rounds=1, iterations=1
    )
    report = ExperimentReport("Ablation -- S_id matching tolerance b_thresh")
    for p in points:
        report.add(
            f"b_thresh = {p.b_thresh:2d}",
            "FN falls, FP must stay 0",
            f"miss rate {p.false_negative_rate:.3f}  "
            f"false match {p.false_positive_rate:.4f}",
        )
    report.print()
    at4 = next(p for p in points if p.b_thresh == 4)
    assert at4.false_positive_rate == 0.0


def test_ablation_digital_cancellation(benchmark):
    losses = benchmark.pedantic(
        lambda: digital_cancellation_sweep(gains_db=(0.0, 4.0, 8.0), n_packets=200),
        rounds=1,
        iterations=1,
    )
    report = ExperimentReport(
        "Ablation -- digital residual canceller (shield PER at +20 dB jam)"
    )
    for gain, loss in sorted(losses.items()):
        report.add(
            f"digital stage {gain:.0f} dB",
            "antenna-only is marginal; +8 dB reaches the paper's regime",
            f"packet loss {loss:.3f}",
        )
    report.print()
    assert losses[8.0] <= losses[0.0]


def test_ablation_detection_window(benchmark):
    points = benchmark.pedantic(
        lambda: detection_window_sweep(n_trials=4000), rounds=1, iterations=1
    )
    report = ExperimentReport("Ablation -- detection window m (S_id length)")
    for p in points:
        report.add(
            f"m = {p.window_bits:3d} bits",
            "coverage vs false matches",
            f"jam covers {100 * p.jammed_fraction_of_packet:.0f}% of packet, "
            f"false match {p.false_match_rate:.4f}",
        )
    report.print()
    full = next(p for p in points if p.window_bits == 104)
    assert full.false_match_rate == 0.0


def test_ablation_antenna_ratio(benchmark):
    results = benchmark.pedantic(
        lambda: antenna_ratio_sweep(n_runs=100), rounds=1, iterations=1
    )
    report = ExperimentReport(
        "Ablation -- antenna coupling |H_jam->rec / H_self| (wearability)"
    )
    for ratio, mean in sorted(results.items()):
        report.add(
            f"coupling {ratio:+.0f} dB",
            "cancellation ~32 dB regardless",
            f"{mean:.1f} dB mean cancellation",
        )
    report.print()
    values = list(results.values())
    assert max(values) - min(values) < 6.0
