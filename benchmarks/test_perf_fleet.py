"""Throughput benchmarks of the fleet hot paths.

A population campaign's wall time decomposes into cohort synthesis
(profile sampling per patient), encounter simulation (covered by the
attack/physio benches), shard reduction (accumulator merges + payload
round trips), and cache I/O (the SQLite backend's upsert/read loop at
fleet unit counts).  Each stage gets a regression guard here; the
``benchmarks/compare.py`` gate runs this file alongside the DSP and
physio suites.
"""

import numpy as np

from repro.campaigns.spec import Scenario
from repro.campaigns.store import SQLiteStore
from repro.fleet.cohort import CohortSpec
from repro.fleet.metrics import FleetAccumulator, QuantileSketch
from repro.fleet.runner import FleetChunkSpec, run_fleet_chunk

_COHORT = CohortSpec(n_patients=100_000, seed=17)

_RNG = np.random.default_rng(29)


def _shard_payloads(n_shards: int, patients_per_shard: int) -> list[dict]:
    payloads = []
    for shard in range(n_shards):
        acc = FleetAccumulator()
        rng = np.random.default_rng(shard)
        for _ in range(patients_per_shard):
            acc.add_attack_patient(
                worn=bool(rng.random() < 0.9),
                wins=int(rng.integers(0, 2)),
                alarms=int(rng.integers(0, 2)),
                trials=2,
                observation_days=1.0,
            )
            acc.add_physio_patient(
                worn=True,
                hr_abs_error=float(rng.uniform(0, 100)),
                mean_ber=float(rng.uniform(0, 0.5)),
            )
        payloads.append(acc.to_payload())
    return payloads


_PAYLOADS = _shard_payloads(50, 200)


def test_perf_cohort_synthesis(benchmark):
    """Profile sampling: 500 patients out of a 100k cohort."""

    def run():
        return list(_COHORT.profiles(40_000, 500))

    profiles = benchmark(run)
    assert len(profiles) == 500


def test_perf_shard_reduction(benchmark):
    """Merging 50 shard payloads (10k patients) into one population."""

    def run():
        merged = FleetAccumulator()
        for payload in _PAYLOADS:
            merged.merge(FleetAccumulator.from_payload(payload))
        return merged

    merged = benchmark(run)
    assert merged.patients == 50 * 200 * 2


def test_perf_quantile_sketch_fill(benchmark):
    """Tallying 100k leakage values into the fixed-bin sketch."""
    values = _RNG.uniform(0.0, 150.0, size=100_000)

    def run():
        return QuantileSketch(0.0, 200.0, 800).add_many(values).quantile(0.9)

    q90 = benchmark(run)
    assert 100.0 <= q90 <= 150.0


def test_perf_sqlite_put_get(benchmark, tmp_path):
    """The cache-backend loop: 200 unit upserts + 200 indexed reads."""
    payload = _PAYLOADS[0]
    scenario_hash = Scenario(
        name="bench-fleet", kind="fleet", n_patients=10
    ).scenario_hash()

    counter = {"n": 0}

    def run():
        counter["n"] += 1
        store = SQLiteStore(tmp_path / f"round-{counter['n']}")
        for i in range(200):
            store.put(scenario_hash, f"unit-{i:04d}", {"shard": i}, payload)
        hits = sum(
            store.get(scenario_hash, f"unit-{i:04d}") is not None
            for i in range(200)
        )
        store.close()
        return hits

    assert benchmark(run) == 200


def test_perf_fleet_attack_shard(benchmark):
    """One 20-patient attack shard end to end (testbeds included)."""
    spec = FleetChunkSpec(
        cohort=CohortSpec(n_patients=20, seed=5),
        start=0,
        count=20,
        trials_per_patient=1,
        task="attack",
        attacker="fcc",
        command="therapy",
    )
    result = benchmark(run_fleet_chunk, spec)
    assert result["patients"] == 20
