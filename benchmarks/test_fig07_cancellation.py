"""Fig. 7: the antidote cancels ~32 dB of jamming at the receive antenna.

The paper's methodology: transmit 100 kb of jamming without the antidote,
then with it, and compare received powers; repeat for many runs and plot
the CDF.  "The antidote signal reduces the jamming signal by 32 dB on
average" with small variance, matching the antenna-cancellation numbers
of Choi et al. without their half-wavelength antenna separation.
"""

import numpy as np

from repro.experiments.metrics import empirical_cdf, summarize
from repro.experiments.report import ExperimentReport, ascii_cdf
from repro.experiments.waveform_lab import cancellation_samples


def test_fig07_antenna_cancellation_cdf(benchmark):
    samples = benchmark.pedantic(
        lambda: cancellation_samples(n_runs=300, jam_samples=4096),
        rounds=1,
        iterations=1,
    )
    stats = summarize(samples)
    values, cdf = empirical_cdf(samples)
    p10 = float(np.percentile(samples, 10))
    p90 = float(np.percentile(samples, 90))

    report = ExperimentReport("Fig. 7 -- antidote cancellation at the receive antenna")
    report.add("mean cancellation", "~32 dB", f"{stats.mean:.1f} dB")
    report.add("CDF support (10th-90th pct)", "~26-38 dB", f"{p10:.1f}-{p90:.1f} dB")
    report.add(
        "antenna separation required",
        "none (2 cm, next to each other)",
        "none",
        "vs 37.5 cm half-wavelength in prior work",
    )
    report.print()
    print()
    print(ascii_cdf(samples, label="nulling of the jamming signal (dB)"))

    assert 30.0 < stats.mean < 34.0
    assert p10 > 20.0
    assert p90 < 45.0
