"""Fig. 3: the IMD replies a fixed ~3.5 ms after a command, without
carrier sensing -- the timing contract the shield's jam window exploits.

Paper observations reproduced:
* (a) replies arrive a fixed interval (3.5 ms) after the programmer's
  message ends, always inside the calibrated [T1, T2] = [2.8, 3.7] ms;
* (b) a second message occupying the medium inside that gap does not
  delay the reply -- the IMD does not sense the medium.
"""

import numpy as np

from repro.channel.link_budget import LinkBudget
from repro.experiments.report import ExperimentReport
from repro.experiments.testbed import ExperimentLinkModel, Placement
from repro.protocol.imd import IMDevice
from repro.protocol.packets import PacketCodec
from repro.protocol.programmer import Programmer
from repro.sim.air import Air
from repro.sim.engine import Simulator
from repro.sim.radio import IMDRadio, ProgrammerRadio
from repro.sim.trace import TimelineTrace


def _run_exchange_experiment(n_exchanges: int, occupy_medium: bool) -> list[float]:
    serial = bytes(range(10))
    sim = Simulator()
    trace = TimelineTrace()
    budget = LinkBudget()
    links = ExperimentLinkModel(budget)
    air = Air(sim, links, rng=np.random.default_rng(33))
    codec = PacketCodec()
    imd = IMDevice(serial, codec=codec, rng=np.random.default_rng(34))
    links.place(Placement("imd", in_phantom=True))
    air.register(IMDRadio(sim, imd, channel=0, trace=trace))
    programmer = Programmer(target_serial=serial, codec=codec)
    prog_radio = ProgrammerRadio(sim, programmer, channel=0, trace=trace)
    links.place(Placement("programmer", location=budget.geometry.location(3)))
    air.register(prog_radio)

    for _ in range(n_exchanges):
        prog_radio.send_command(programmer.interrogate(), skip_lbt=True)
        if occupy_medium:
            # Fig. 3(b): put another message on the air inside the gap.
            sim.schedule(
                2e-3,
                lambda: air.transmit(
                    "programmer", 0, -16.0, 100e3, kind="jam", duration=8e-3
                ),
            )
        sim.run(until=sim.now + 0.1)
    return trace.reply_latencies("programmer", "imd")


def test_fig03_imd_reply_timing(benchmark):
    latencies_idle, latencies_busy = benchmark.pedantic(
        lambda: (
            _run_exchange_experiment(30, occupy_medium=False),
            _run_exchange_experiment(30, occupy_medium=True),
        ),
        rounds=1,
        iterations=1,
    )

    report = ExperimentReport("Fig. 3 -- IMD/programmer interaction timing")
    idle_ms = 1e3 * float(np.mean(latencies_idle))
    busy_ms = 1e3 * float(np.mean(latencies_busy))
    report.add("mean reply latency, idle medium", "3.5 ms", f"{idle_ms:.2f} ms")
    report.add(
        "mean reply latency, busy medium",
        "3.5 ms (no carrier sense)",
        f"{busy_ms:.2f} ms",
    )
    report.add(
        "replies inside [T1, T2] = [2.8, 3.7] ms",
        "all",
        f"{sum(2.8e-3 <= l <= 3.7e-3 for l in latencies_idle + latencies_busy)}"
        f"/{len(latencies_idle) + len(latencies_busy)}",
    )
    report.add(
        "replies while medium occupied",
        f"{len(latencies_busy)}/{len(latencies_busy)}",
        f"{len(latencies_busy)}/30",
        "IMD ignores the busy channel",
    )
    report.print()

    assert len(latencies_busy) == 30  # the IMD replied every time
    assert abs(idle_ms - 3.5) < 0.3
    assert abs(busy_ms - idle_ms) < 0.3  # occupancy does not shift timing
    assert all(2.8e-3 <= l <= 3.7e-3 for l in latencies_idle + latencies_busy)
