"""Fig. 11: battery-depletion attack (trigger IMD transmissions).

Paper rows (probability the IMD replies, locations 1..14):
  shield absent : 1 1 1 1 1 0.94 0.77 0.59 0.01 0 0 0 0 0
  shield present: 0 0 0 0 0 0    0    0    0    0 0 0 0 0

With the shield off, an off-the-shelf-power adversary reaches ~14 m
(location 8); with the shield on, it fails even at 20 cm.
"""

from benchmarks.conftest import trials_per_location
from repro.experiments.report import ExperimentReport
from repro.experiments.sweeps import attack_success_sweep

LOCATIONS = tuple(range(1, 15))


def _success_curve(shield_present: bool, n_trials: int, command: str, seed: int):
    results = attack_success_sweep(
        shield_present=shield_present,
        n_trials=n_trials,
        command=command,
        location_indices=LOCATIONS,
        seed=seed,
    )
    return {loc: r.success_probability for loc, r in results.items()}


PAPER_ABSENT = {
    1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0, 6: 0.94, 7: 0.77, 8: 0.59,
    9: 0.01, 10: 0.0, 11: 0.0, 12: 0.0, 13: 0.0, 14: 0.0,
}


def test_fig11_battery_depletion_attack(benchmark):
    n = trials_per_location()

    def run():
        absent = _success_curve(False, n, "interrogate", seed=1100)
        present = _success_curve(True, n, "interrogate", seed=2100)
        return absent, present

    absent, present = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ExperimentReport(
        f"Fig. 11 -- P(IMD replies) per location, {n} trials each"
    )
    for loc in LOCATIONS:
        report.add(
            f"location {loc:2d}",
            f"absent {PAPER_ABSENT[loc]:.2f} / present 0.00",
            f"absent {absent[loc]:.2f} / present {present[loc]:.2f}",
        )
    report.print()

    # Shape assertions.
    assert all(absent[loc] >= 0.9 for loc in range(1, 6))  # near field: sure thing
    assert absent[8] > 0.25  # the 14 m edge still works sometimes
    assert all(absent[loc] <= 0.2 for loc in range(9, 15))  # beyond the edge
    # The shield blocks everything, everywhere (paper: all zeros).
    assert all(present[loc] <= 0.05 for loc in LOCATIONS)
