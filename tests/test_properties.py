"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.antidote import antidote_signal, residual_gain
from repro.core.policy import JamWindowPolicy
from repro.crypto.aead import AEAD
from repro.crypto.kdf import hkdf_sha256
from repro.crypto.stream import xor_stream
from repro.phy.ber import ber_to_packet_error_rate, noncoherent_fsk_ber
from repro.phy.fsk import FSKModulator, NoncoherentFSKDemodulator
from repro.phy.preamble import IdentifyingSequence, hamming_distance
from repro.phy.signal import Waveform, db_to_linear, linear_to_db
from repro.protocol.commands import CommandType
from repro.protocol.crc import bits_to_bytes, bytes_to_bits, crc16_ccitt
from repro.protocol.packets import DecodeError, Packet, PacketCodec

bits_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=256).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


class TestSignalProperties:
    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_db_linear_round_trip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db)

    @given(
        st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
            min_size=4,
            max_size=64,
        ),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_scaled_to_power_hits_target(self, values, power):
        samples = np.asarray(values, dtype=float)
        if np.sum(np.abs(samples) ** 2) < 1e-6:
            samples[0] = 1.0  # avoid the (rejected) underflow regime
        w = Waveform(samples, 1e6).scaled_to_power(power)
        assert w.power() == pytest.approx(power, rel=1e-9)

    def test_scaled_to_power_rejects_underflow(self):
        w = Waveform(np.full(4, 1e-200), 1e6)
        with pytest.raises(ValueError):
            w.scaled_to_power(1.0)


class TestFSKProperties:
    @settings(max_examples=25, deadline=None)
    @given(bits_arrays)
    def test_modulate_demodulate_identity(self, bits):
        """Clean round trip for any bit pattern."""
        w = FSKModulator().modulate(bits)
        decoded = NoncoherentFSKDemodulator().demodulate(w)
        assert np.array_equal(decoded, bits)

    @settings(max_examples=25, deadline=None)
    @given(bits_arrays, st.floats(min_value=0.0, max_value=2 * math.pi))
    def test_phase_rotation_invariance(self, bits, phase):
        w = FSKModulator().modulate(bits).scaled(np.exp(1j * phase))
        decoded = NoncoherentFSKDemodulator().demodulate(w)
        assert np.array_equal(decoded, bits)

    @settings(max_examples=25, deadline=None)
    @given(bits_arrays)
    def test_constant_envelope(self, bits):
        w = FSKModulator().modulate(bits)
        assert np.allclose(np.abs(w.samples), 1.0)


class TestBERProperties:
    @given(st.floats(min_value=-40.0, max_value=40.0))
    def test_ber_in_valid_range(self, sinr_db):
        ber = noncoherent_fsk_ber(sinr_db)
        assert 0.0 <= ber <= 0.5

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_per_in_valid_range_and_monotone_in_bits(self, ber, n_bits):
        per = ber_to_packet_error_rate(ber, n_bits)
        assert 0.0 <= per <= 1.0
        assert per <= ber_to_packet_error_rate(ber, n_bits + 1) + 1e-12


class TestCRCProperties:
    @given(st.binary(min_size=0, max_size=128))
    def test_bits_bytes_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0))
    def test_single_bit_flip_always_detected(self, data, position):
        """CRC-16 detects every single-bit error (d_min >= 2)."""
        bits = bytes_to_bits(data)
        position %= len(bits)
        crc = crc16_ccitt(data)
        bits[position] ^= 1
        assert crc16_ccitt(bits_to_bytes(bits)) != crc


class TestPacketProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.binary(min_size=10, max_size=10),
        st.sampled_from(list(CommandType)),
        st.integers(min_value=0, max_value=255),
        st.binary(min_size=0, max_size=64),
    )
    def test_codec_round_trip(self, serial, opcode, sequence, payload):
        codec = PacketCodec()
        packet = Packet(serial, opcode, sequence, payload)
        assert codec.decode(codec.encode(packet)) == packet

    @settings(max_examples=40, deadline=None)
    @given(
        st.binary(min_size=10, max_size=10),
        st.binary(min_size=0, max_size=32),
        st.integers(min_value=0),
    )
    def test_post_preamble_flip_always_rejected(self, serial, payload, position):
        """Any single corrupted bit after the preamble kills the packet --
        the S3.1 checksum property jamming relies on."""
        codec = PacketCodec()
        packet = Packet(serial, CommandType.INTERROGATE, 1, payload)
        bits = codec.encode(packet)
        position = 16 + position % (len(bits) - 16)
        bits[position] ^= 1
        with pytest.raises(DecodeError):
            codec.decode(bits)


class TestIdentifyingSequenceProperties:
    @settings(max_examples=50, deadline=None)
    @given(bits_arrays, st.integers(min_value=0, max_value=8))
    def test_match_iff_within_threshold(self, bits, b_thresh):
        seq = IdentifyingSequence(bits)
        flips = min(b_thresh + 1, len(bits))
        corrupted = bits.copy()
        corrupted[:flips] ^= 1
        assert hamming_distance(bits, corrupted) == flips
        assert seq.matches(corrupted, b_thresh) == (flips <= b_thresh)

    @given(bits_arrays)
    def test_self_distance_zero(self, bits):
        assert hamming_distance(bits, bits) == 0

    @given(bits_arrays, bits_arrays)
    def test_distance_symmetric(self, a, b):
        n = min(len(a), len(b))
        assert hamming_distance(a[:n], b[:n]) == hamming_distance(b[:n], a[:n])


class TestAntidoteProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.complex_numbers(min_magnitude=0.1, max_magnitude=2.0, allow_nan=False),
        st.complex_numbers(min_magnitude=0.001, max_magnitude=0.2, allow_nan=False),
    )
    def test_true_channels_cancel_exactly(self, h_self, h_jr):
        rng = np.random.default_rng(0)
        jam = Waveform(
            rng.standard_normal(128) + 1j * rng.standard_normal(128), 600e3
        )
        antidote = antidote_signal(jam, h_jr, h_self)
        combined = jam.scaled(h_jr).samples + antidote.scaled(h_self).samples
        assert np.max(np.abs(combined)) < 1e-9

    @settings(max_examples=40)
    @given(
        st.complex_numbers(min_magnitude=0.5, max_magnitude=2.0, allow_nan=False),
        st.complex_numbers(min_magnitude=0.01, max_magnitude=0.1, allow_nan=False),
        st.floats(min_value=-0.05, max_value=0.05),
    )
    def test_residual_bounded_by_error(self, h_self, h_jr, eps):
        """|residual| <= |H_jr| * |eps| / |1 + eps| for a relative error
        on the jam-channel estimate alone."""
        residual = residual_gain(h_jr, h_self, h_jr * (1 + eps), h_self)
        assert abs(residual) <= abs(h_jr) * abs(eps) + 1e-12


class TestJamWindowProperties:
    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=2.8e-3, max_value=3.7e-3),
        st.floats(min_value=1e-4, max_value=21e-3),
    )
    def test_window_covers_all_legal_replies(self, end_time, delay, duration):
        """For every command end time, any reply inside the calibrated
        [T1, T2] x (0, P] envelope is fully jammed -- the S6 guarantee."""
        policy = JamWindowPolicy()
        assert policy.covers_reply(end_time, delay, duration)


class TestCryptoProperties:
    @settings(max_examples=40)
    @given(st.binary(min_size=0, max_size=256), st.binary(min_size=1, max_size=16))
    def test_stream_involution(self, data, nonce):
        key = b"k" * 16
        assert xor_stream(xor_stream(data, key, nonce), key, nonce) == data

    @settings(max_examples=30)
    @given(st.binary(min_size=0, max_size=128), st.binary(min_size=0, max_size=32))
    def test_aead_round_trip(self, plaintext, associated):
        keys = hkdf_sha256(b"root", 64)
        aead = AEAD(keys[:32], keys[32:])
        sealed = aead.seal(b"n" * 8, plaintext, associated)
        assert aead.open(b"n" * 8, sealed, associated) == plaintext

    @settings(max_examples=30)
    @given(st.binary(min_size=16, max_size=64), st.binary(min_size=16, max_size=64))
    def test_hkdf_distinct_inputs_distinct_outputs(self, a, b):
        if a == b:
            return
        assert hkdf_sha256(a, 32) != hkdf_sha256(b, 32)
