"""The run-history index and ``repro history`` / ``repro diff``.

History is the longitudinal half of observability: every traced run
reduces to one JSONL line under ``<cache>/runs/history.jsonl``, and the
diff engine compares any two lines, flagging slower stages, lower
throughput, or a colder cache beyond a relative threshold.
"""

import json

import pytest

from repro.campaigns import registry
from repro.campaigns.cli import main
from repro.campaigns.runner import CampaignRunner
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    diff_runs,
    find_entry,
    history_path,
    load_history,
    record_run,
)
from repro.obs.trace import Tracer


def _scenario():
    return registry.get("fleet-attack-prevalence").override(
        n_patients=20, n_trials=1, chunk_size=5
    )


def _traced_run(cache_dir, scenario=None):
    scenario = scenario or _scenario()
    tracer = Tracer(cache_dir, scenario.name)
    CampaignRunner(scenario, cache_dir=cache_dir, tracer=tracer).run()
    return tracer


def _entry(run_id="r1", scenario="s", started="2026-08-08T00:00:00",
           wall_s=10.0, throughput=5.0, hit_rate=0.8, stages=None):
    return {
        "history_schema": HISTORY_SCHEMA_VERSION,
        "run_id": run_id,
        "scenario": scenario,
        "started_at": started,
        "summary": {
            "wall_s": wall_s,
            "throughput_units_per_s": throughput,
            "cache_hit_rate": hit_rate,
            "stages": stages or {},
        },
    }


class TestRecordAndLoad:
    def test_traced_run_auto_records_into_history(self, tmp_path):
        tracer = _traced_run(tmp_path)
        entries = load_history(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["run_id"] == tracer.run_id
        assert entry["scenario"] == "fleet-attack-prevalence"
        assert entry["history_schema"] == HISTORY_SCHEMA_VERSION
        assert entry["summary"]["units"] == 4
        assert entry["summary"]["computed"] == 4
        assert entry["summary"]["wall_s"] > 0
        assert entry["summary"]["throughput_units_per_s"] > 0
        assert not entry["summary"]["interrupted"]
        assert entry["summary"]["stages"]
        assert entry["manifest"]["cache_backend"]

    def test_second_run_appends_a_second_entry(self, tmp_path):
        first = _traced_run(tmp_path)
        second = _traced_run(tmp_path)
        entries = load_history(tmp_path)
        assert [e["run_id"] for e in entries] == [
            first.run_id, second.run_id,
        ]
        # The warm second run reused every unit.
        assert entries[1]["summary"]["hits"] == 4
        assert entries[1]["summary"]["cache_hit_rate"] == 1.0

    def test_re_record_supersedes_by_run_id(self, tmp_path):
        tracer = _traced_run(tmp_path)
        assert record_run(tmp_path, tracer.run_dir) is not None
        raw_lines = history_path(tmp_path).read_text().splitlines()
        assert len(raw_lines) == 2
        entries = load_history(tmp_path)
        assert len(entries) == 1
        assert entries[0]["run_id"] == tracer.run_id

    def test_torn_tail_is_skipped(self, tmp_path):
        _traced_run(tmp_path)
        path = history_path(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "torn", "summ')
        entries = load_history(tmp_path)
        assert len(entries) == 1
        assert entries[0]["run_id"] != "torn"

    def test_scenario_filter(self, tmp_path):
        _traced_run(tmp_path)
        other = registry.get("attack-success-shielded").override(
            n_trials=2, location_indices=(1,)
        )
        _traced_run(tmp_path, scenario=other)
        assert len(load_history(tmp_path)) == 2
        fleet_only = load_history(
            tmp_path, scenario="fleet-attack-prevalence"
        )
        assert [e["scenario"] for e in fleet_only] == [
            "fleet-attack-prevalence"
        ]

    def test_find_entry(self, tmp_path):
        tracer = _traced_run(tmp_path)
        assert find_entry(tmp_path, tracer.run_id)["run_id"] == tracer.run_id
        assert find_entry(tmp_path, "nope") is None

    def test_record_run_without_trace_returns_none(self, tmp_path):
        assert record_run(tmp_path, tmp_path / "missing-run") is None
        assert not history_path(tmp_path).exists()

    def test_manifest_only_trace_records(self, tmp_path):
        # A run killed right after start leaves a manifest line and no
        # spans; indexing it must not crash and must keep the run id.
        tracer = Tracer(tmp_path, "fleet-attack-prevalence")
        tracer.start_run({"scenario": "fleet-attack-prevalence"})
        entry = record_run(tmp_path, tracer.run_dir)
        assert entry is not None
        assert entry["run_id"] == tracer.run_id
        assert entry["summary"]["units"] == 0
        entries = load_history(tmp_path)
        assert [e["run_id"] for e in entries] == [tracer.run_id]
        tracer.finish()


class TestDiffRuns:
    def test_injected_slowdown_is_flagged(self):
        base = _entry(
            "base", wall_s=10.0, throughput=5.0,
            stages={"execute": {"p50_s": 1.0, "p90_s": 2.0}},
        )
        slow = _entry(
            "slow", wall_s=25.0, throughput=2.0,
            stages={"execute": {"p50_s": 2.5, "p90_s": 5.0}},
        )
        diff = diff_runs(base, slow)
        assert diff["baseline"] == "base"
        assert diff["candidate"] == "slow"
        assert set(diff["regressions"]) == {
            "wall_s", "throughput_units_per_s",
            "execute.p50_s", "execute.p90_s",
        }

    def test_identical_runs_show_no_regressions(self):
        entry = _entry(stages={"execute": {"p50_s": 1.0, "p90_s": 2.0}})
        assert diff_runs(entry, dict(entry))["regressions"] == []

    def test_threshold_is_respected(self):
        base = _entry("a", wall_s=10.0)
        slightly = _entry("b", wall_s=10.8)
        assert diff_runs(base, slightly, threshold=0.10)["regressions"] == []
        assert diff_runs(base, slightly, threshold=0.05)["regressions"] == [
            "wall_s"
        ]

    def test_lower_is_worse_direction(self):
        base = _entry("a", hit_rate=1.0, throughput=10.0)
        colder = _entry("b", hit_rate=0.5, throughput=10.0)
        assert diff_runs(base, colder)["regressions"] == ["cache_hit_rate"]

    def test_zero_or_missing_baseline_never_flags(self):
        base = _entry("a", wall_s=0.0, throughput=None, hit_rate=0.0)
        cand = _entry("b", wall_s=100.0, throughput=1.0, hit_rate=1.0)
        diff = diff_runs(base, cand)
        assert diff["regressions"] == []
        by_name = {m["name"]: m for m in diff["metrics"]}
        assert by_name["wall_s"]["ratio"] is None
        assert by_name["throughput_units_per_s"]["ratio"] is None

    def test_stage_present_on_one_side_is_informational(self):
        base = _entry("a", stages={"flush": {"p50_s": 1.0, "p90_s": 1.0}})
        cand = _entry("b", stages={"queue": {"p50_s": 9.0, "p90_s": 9.0}})
        diff = diff_runs(base, cand)
        assert diff["regressions"] == []
        names = {m["name"] for m in diff["metrics"]}
        assert {"flush.p50_s", "queue.p90_s"} <= names

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            diff_runs(_entry("a"), _entry("b"), threshold=-0.1)


class TestHistoryCli:
    def test_history_table_lists_runs(self, capsys, tmp_path):
        _traced_run(tmp_path)
        _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["history", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run id" in out
        assert "100% hit" in out  # the warm second run

    def test_history_json_and_limit(self, capsys, tmp_path):
        first = _traced_run(tmp_path)
        second = _traced_run(tmp_path)
        del first
        capsys.readouterr()
        assert main([
            "history", "--cache-dir", str(tmp_path),
            "--limit", "1", "--format", "json",
        ]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["run_id"] for e in entries] == [second.run_id]

    def test_history_empty_cache_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no recorded runs"):
            main(["history", "--cache-dir", str(tmp_path)])

    def test_diff_flags_slowdown_and_strict_gates(self, capsys, tmp_path):
        import repro.obs.history as history_mod

        base = _entry(
            "base", scenario="fleet-attack-prevalence",
            wall_s=10.0, stages={"execute": {"p50_s": 1.0, "p90_s": 2.0}},
        )
        slow = _entry(
            "slow", scenario="fleet-attack-prevalence",
            started="2026-08-08T01:00:00",
            wall_s=25.0, stages={"execute": {"p50_s": 2.5, "p90_s": 5.0}},
        )
        path = history_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for entry in (base, slow):
                fh.write(json.dumps(entry) + "\n")
        del history_mod
        capsys.readouterr()
        # Without --strict the diff reports but does not gate.
        assert main([
            "diff", "base", "slow", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "wall_s" in out
        # --strict turns regressions into a non-zero exit.
        assert main([
            "diff", "base", "slow", "--strict",
            "--cache-dir", str(tmp_path),
        ]) == 1
        # The reverse direction (slow -> fast) is an improvement.
        capsys.readouterr()
        assert main([
            "diff", "slow", "base", "--strict",
            "--cache-dir", str(tmp_path),
        ]) == 0

    def test_diff_json_output(self, capsys, tmp_path):
        first = _traced_run(tmp_path)
        second = _traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "diff", first.run_id, second.run_id,
            "--cache-dir", str(tmp_path), "--format", "json",
        ]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["baseline"] == first.run_id
        assert diff["candidate"] == second.run_id
        assert isinstance(diff["regressions"], list)

    def test_diff_unknown_run_errors(self, tmp_path):
        _traced_run(tmp_path)
        with pytest.raises(SystemExit, match="nope"):
            main(["diff", "nope", "also-nope", "--cache-dir", str(tmp_path)])
