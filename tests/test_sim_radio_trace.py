"""Tests for the radio adapters and timeline tracing (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.experiments.testbed import AttackTestbed, ExperimentLinkModel, Placement
from repro.channel.link_budget import LinkBudget
from repro.protocol.commands import CommandType
from repro.protocol.imd import IMDevice
from repro.protocol.packets import Packet, PacketCodec
from repro.protocol.programmer import Programmer
from repro.sim.air import Air
from repro.sim.engine import Simulator
from repro.sim.radio import IMDRadio, ObserverRadio, ProgrammerRadio
from repro.sim.trace import TimelineTrace


@pytest.fixture
def exchange_rig(serial):
    """IMD + programmer at location 3, no shield."""
    sim = Simulator()
    trace = TimelineTrace()
    budget = LinkBudget()
    links = ExperimentLinkModel(budget)
    air = Air(sim, links, rng=np.random.default_rng(9))
    codec = PacketCodec()
    imd = IMDevice(serial, codec=codec, rng=np.random.default_rng(10))
    imd_radio = IMDRadio(sim, imd, channel=0, trace=trace)
    links.place(Placement("imd", in_phantom=True))
    air.register(imd_radio)
    programmer = Programmer(target_serial=serial, codec=codec)
    prog_radio = ProgrammerRadio(sim, programmer, channel=0, trace=trace)
    links.place(
        Placement("programmer", location=budget.geometry.location(3))
    )
    air.register(prog_radio)
    return sim, air, imd, imd_radio, programmer, prog_radio, trace


class TestExchange:
    def test_command_reply_round_trip(self, exchange_rig):
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        prog_radio.send_command(programmer.interrogate())
        sim.run(until=0.1)
        assert imd.transmissions == 1
        assert len(programmer.replies) == 1
        assert programmer.replies[0].opcode is CommandType.TELEMETRY

    def test_lbt_delays_transmission(self, exchange_rig):
        """S2: the programmer listens for 10 ms before transmitting."""
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        prog_radio.send_command(programmer.interrogate())
        sim.run(until=0.1)
        tx = air.transmissions_by("programmer")[0]
        assert tx.start_time >= 0.010

    def test_skip_lbt(self, exchange_rig):
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        prog_radio.send_command(programmer.interrogate(), skip_lbt=True)
        sim.run(until=0.1)
        assert air.transmissions_by("programmer")[0].start_time == 0.0

    def test_lbt_defers_on_busy_channel(self, exchange_rig):
        """The programmer must wait out a busy channel."""
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        air.transmit(
            "imd", 0, -16.0, 100e3, kind="jam", duration=0.025
        )  # occupy the channel
        prog_radio.send_command(programmer.interrogate())
        sim.run(until=0.2)
        tx = air.transmissions_by("programmer")[0]
        assert tx.start_time >= 0.025

    def test_reply_latency_near_3_5ms(self, exchange_rig):
        """Fig. 3(a): the IMD replies ~3.5 ms after the command ends."""
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        for _ in range(5):
            prog_radio.send_command(programmer.interrogate(), skip_lbt=True)
            sim.run(until=sim.now + 0.1)
        latencies = trace.reply_latencies("programmer", "imd")
        assert len(latencies) == 5
        for lat in latencies:
            assert 2.8e-3 <= lat <= 3.7e-3

    def test_imd_replies_into_busy_medium(self, exchange_rig):
        """Fig. 3(b): the IMD does not carrier-sense; it replies at the
        same fixed interval even when the medium is occupied."""
        sim, air, imd, imd_radio, programmer, prog_radio, trace = exchange_rig
        prog_radio.send_command(programmer.interrogate(), skip_lbt=True)
        # Occupy the medium through the whole reply window with a second
        # message transmitted right after the command (the paper injects
        # it "within 1 ms" of the first message ending).
        sim.schedule(
            2e-3,
            lambda: air.transmit(
                "programmer", 0, -16.0, 100e3, kind="jam", duration=0.01
            ),
        )
        sim.run(until=0.1)
        assert imd.transmissions == 1
        latencies = trace.reply_latencies("programmer", "imd")
        assert latencies and 2.8e-3 <= latencies[0] <= 3.7e-3


class TestObserver:
    def test_observer_records_imd_replies(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=2)
        bed.attack_once(bed.interrogate_packet())
        assert len(bed.observer.packets_from("imd")) == 1

    def test_observer_hears_in_phantom_cleanly(self):
        """The observer shares the phantom with the IMD, so its copy of
        the reply is near-noiseless."""
        bed = AttackTestbed(location_index=1, shield_present=False, seed=2)
        bed.attack_once(bed.interrogate_packet())
        reception = bed.observer.packets_from("imd")[0]
        assert reception.bit_flips == 0


class TestTrace:
    def test_entries_recorded_in_order(self):
        trace = TimelineTrace()
        trace.record(0.1, "a", "tx-start", opcode=1)
        trace.record(0.2, "b", "rx")
        assert [e.device for e in trace.entries] == ["a", "b"]

    def test_entries_for_filters(self):
        trace = TimelineTrace()
        trace.record(0.1, "a", "tx-start")
        trace.record(0.2, "a", "rx")
        trace.record(0.3, "b", "tx-start")
        assert len(trace.entries_for("a")) == 2
        assert len(trace.entries_for("a", "rx")) == 1

    def test_render_contains_times(self):
        trace = TimelineTrace()
        trace.record(0.0035, "imd", "tx-start", opcode=128)
        out = trace.render()
        assert "3.500 ms" in out
        assert "imd" in out

    def test_render_limit(self):
        trace = TimelineTrace()
        for i in range(10):
            trace.record(i * 0.001, "x", "evt")
        assert len(trace.render(limit=3).splitlines()) == 3
