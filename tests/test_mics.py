"""Tests for the MICS band plan, FCC rules, and channel occupancy."""

import pytest

from repro.mics.band import MICSBand, MICSChannel
from repro.mics.channel_plan import ChannelPlan
from repro.mics.regulations import FCCRules


class TestBand:
    def test_ten_channels(self):
        """S2: the 402-405 MHz band divides into 300 kHz channels."""
        assert MICSBand().n_channels == 10

    def test_total_bandwidth(self):
        assert MICSBand().total_bandwidth_hz == pytest.approx(3e6)

    def test_channel_centres_inside_band(self):
        band = MICSBand()
        for ch in band.channels():
            assert band.low_hz < ch.center_hz < band.high_hz

    def test_channels_tile_without_overlap(self):
        band = MICSBand()
        chans = band.channels()
        for a, b in zip(chans, chans[1:]):
            assert a.high_hz == pytest.approx(b.low_hz)

    def test_frequency_lookup(self):
        band = MICSBand()
        ch = band.channel_for_frequency(402.95e6)
        assert ch.contains(402.95e6)

    def test_frequency_lookup_out_of_band(self):
        with pytest.raises(ValueError):
            MICSBand().channel_for_frequency(406e6)

    def test_channel_index_bounds(self):
        with pytest.raises(IndexError):
            MICSBand().channel(10)

    def test_non_integer_channel_count_rejected(self):
        with pytest.raises(ValueError):
            MICSBand(low_hz=402e6, high_hz=402.5e6, channel_bandwidth_hz=300e3)

    def test_channel_validation(self):
        with pytest.raises(ValueError):
            MICSChannel(-1, 402e6)


class TestRules:
    def test_external_cap_is_25_microwatts(self):
        assert FCCRules().external_eirp_dbm == pytest.approx(-16.0)

    def test_implant_20db_lower(self):
        """S10.1(b): implanted devices transmit 20 dB below external."""
        rules = FCCRules()
        assert rules.max_tx_power_dbm(implanted=True) == pytest.approx(-36.0)

    def test_lbt_is_10ms(self):
        assert FCCRules().listen_before_talk_s == pytest.approx(0.010)

    def test_imd_never_initiates(self):
        assert FCCRules().imd_initiates is False

    def test_compliance_check(self):
        rules = FCCRules()
        assert rules.is_compliant_power(-16.0)
        assert not rules.is_compliant_power(-15.0)
        assert rules.is_compliant_power(-36.0, implanted=True)
        assert not rules.is_compliant_power(-30.0, implanted=True)


class TestChannelPlan:
    def test_pick_first_idle(self):
        plan = ChannelPlan()
        assert plan.pick_channel(at_time_s=0.0) == 0

    def test_occupied_channels_skipped(self):
        plan = ChannelPlan()
        plan.occupy(0, until_time_s=5.0)
        plan.occupy(1, until_time_s=5.0)
        assert plan.pick_channel(at_time_s=1.0) == 2

    def test_occupancy_expires(self):
        plan = ChannelPlan()
        plan.occupy(0, until_time_s=2.0)
        assert not plan.is_idle(0, at_time_s=1.0)
        assert plan.is_idle(0, at_time_s=2.0)

    def test_release(self):
        plan = ChannelPlan()
        plan.occupy(3, until_time_s=100.0)
        plan.release(3)
        assert plan.is_idle(3, at_time_s=0.0)

    def test_occupy_extends_not_shrinks(self):
        plan = ChannelPlan()
        plan.occupy(0, until_time_s=10.0)
        plan.occupy(0, until_time_s=5.0)
        assert not plan.is_idle(0, at_time_s=7.0)

    def test_all_busy_raises(self):
        plan = ChannelPlan()
        for i in range(plan.band.n_channels):
            plan.occupy(i, until_time_s=10.0)
        with pytest.raises(RuntimeError):
            plan.pick_channel(at_time_s=0.0)

    def test_invalid_channel_rejected(self):
        with pytest.raises(IndexError):
            ChannelPlan().occupy(42, until_time_s=1.0)
