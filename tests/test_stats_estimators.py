"""Tests for repro.stats: intervals, sequential estimators, expectations."""

import math

import numpy as np
import pytest

from repro.experiments.metrics import success_probability
from repro.stats import (
    Expectation,
    MeanEstimator,
    SequentialEstimator,
    evaluate_expectation,
    jeffreys_interval,
    mean_interval,
    normal_quantile,
    wilson_interval,
    worst_verdict,
)
from repro.stats.expectations import CellStats


class TestIntervals:
    def test_wilson_matches_legacy_success_probability(self):
        """The seed repo's Wilson numbers must not move by a ULP."""
        for successes, trials in [(0, 25), (59, 100), (100, 100), (1, 3)]:
            _, low, high = success_probability(successes, trials)
            assert wilson_interval(successes, trials) == (low, high)

    def test_legacy_z_values_survive(self):
        assert normal_quantile(0.95) == 1.9600
        assert normal_quantile(0.90) == 1.6449
        assert normal_quantile(0.99) == 2.5758

    def test_arbitrary_confidence_resolves_through_scipy(self):
        z80 = normal_quantile(0.80)
        assert z80 == pytest.approx(1.2816, abs=1e-3)
        assert normal_quantile(0.80) < normal_quantile(0.95)

    def test_confidence_bounds_rejected(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                normal_quantile(bad)

    def test_jeffreys_pins_observed_boundaries(self):
        low, high = jeffreys_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 0.2
        low, high = jeffreys_interval(20, 20)
        assert high == 1.0 and 0.8 < low < 1.0

    def test_jeffreys_tighter_than_wilson_at_zero(self):
        """The reason adaptive stopping defaults to Jeffreys."""
        for n in (8, 12, 25):
            _, wilson_high = wilson_interval(0, n)
            _, jeffreys_high = jeffreys_interval(0, n)
            assert jeffreys_high < wilson_high

    def test_interval_width_shrinks_with_trials(self):
        widths = []
        for n in (10, 40, 160):
            low, high = jeffreys_interval(n // 2, n)
            widths.append(high - low)
        assert widths[0] > widths[1] > widths[2]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            jeffreys_interval(5, 4)

    def test_mean_interval_matches_numpy_reference(self):
        rng = np.random.default_rng(3)
        sample = rng.normal(0.4, 0.05, size=30)
        low, high = mean_interval(
            len(sample), float(sample.sum()), float(np.sum(sample**2))
        )
        from scipy import stats as sps

        t = sps.t.ppf(0.975, len(sample) - 1)
        half = t * sample.std(ddof=1) / math.sqrt(len(sample))
        assert (low + high) / 2 == pytest.approx(sample.mean(), rel=1e-9)
        assert high - low == pytest.approx(2 * half, rel=1e-6)

    def test_mean_interval_needs_two_samples(self):
        with pytest.raises(ValueError):
            mean_interval(1, 0.5, 0.25)

    def test_mean_interval_clips_to_bounds(self):
        low, high = mean_interval(3, 0.01, 0.01, bounds=(0.0, 1.0))
        assert low >= 0.0 and high <= 1.0


class TestSequentialEstimator:
    def test_update_accumulates_and_merges(self):
        a = SequentialEstimator().update(3, 10).update(1, 10)
        b = SequentialEstimator(4, 20)
        assert a == b
        a.merge(SequentialEstimator(0, 5))
        assert a.trials == 25 and a.estimate == pytest.approx(4 / 25)

    def test_half_width_infinite_before_data(self):
        assert SequentialEstimator().half_width() == math.inf
        assert not SequentialEstimator().converged(0.1)

    def test_convergence_is_monotone_in_trials_at_zero(self):
        est = SequentialEstimator()
        assert not est.update(0, 6).converged(0.10)
        assert est.update(0, 6).converged(0.10)

    def test_interval_methods_dispatch(self):
        est = SequentialEstimator(0, 12)
        assert est.interval(method="jeffreys")[1] < est.interval(method="wilson")[1]
        with pytest.raises(ValueError):
            est.interval(method="wald")

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            SequentialEstimator().update(-1, 5)
        with pytest.raises(ValueError):
            SequentialEstimator().update(6, 5)


class TestMeanEstimator:
    def test_merged_chunks_match_single_pass(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.3, 0.7, size=24)
        whole = MeanEstimator().update(
            len(values), float(values.sum()), float(np.sum(values**2))
        )
        chunked = MeanEstimator()
        for part in np.split(values, 4):
            chunked.update(len(part), float(part.sum()), float(np.sum(part**2)))
        assert chunked.estimate == pytest.approx(whole.estimate, rel=1e-12)
        assert chunked.interval() == pytest.approx(whole.interval(), rel=1e-9)

    def test_half_width_ignores_bounds_clipping(self):
        """Convergence must measure sampling precision, not wall distance."""
        est = MeanEstimator(bounds=(0.0, 1.0)).update(5, 0.005, 0.00002)
        low, high = est.interval()
        assert low == 0.0  # clipped for reporting
        assert est.half_width() > (high - low) / 2 - 1e-12

    def test_no_estimate_before_data(self):
        with pytest.raises(ValueError):
            _ = MeanEstimator().estimate
        assert MeanEstimator().half_width() == math.inf


def _cell(axis, **metrics) -> CellStats:
    return CellStats(axis, f"cell {axis}", dict(metrics))


class TestExpectationSemantics:
    def test_upper_bound_pass_fail_inconclusive(self):
        exp = Expectation(metric="p", kind="upper_bound", value=0.05)
        cells = [_cell(1, p=SequentialEstimator(0, 25))]
        assert evaluate_expectation(exp, cells).verdict == "pass"
        cells = [_cell(1, p=SequentialEstimator(25, 25))]
        assert evaluate_expectation(exp, cells).verdict == "fail"
        # 2/10: estimate 0.2 violates the bound, but the CI still
        # reaches below 0.05 -> more trials would settle it.
        cells = [_cell(1, p=SequentialEstimator(2, 10))]
        assert evaluate_expectation(exp, cells).verdict == "inconclusive"

    def test_upper_bound_confirmation_needs_whole_ci(self):
        exp = Expectation(metric="p", kind="upper_bound", value=0.05)
        weak = evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(0, 10))])
        assert weak.verdict == "pass" and not weak.confirmed
        strong = evaluate_expectation(
            exp, [_cell(1, p=SequentialEstimator(0, 200))]
        )
        assert strong.verdict == "pass" and strong.confirmed

    def test_lower_bound_mirrors_upper(self):
        exp = Expectation(metric="p", kind="lower_bound", value=0.9)
        assert (
            evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(25, 25))]).verdict
            == "pass"
        )
        assert (
            evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(0, 25))]).verdict
            == "fail"
        )
        assert (
            evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(8, 10))]).verdict
            == "inconclusive"
        )

    def test_ci_overlap_judges_interval_intersection(self):
        exp = Expectation(metric="m", kind="ci_overlap", value=0.5, tolerance=0.05)
        near = MeanEstimator().update(10, 4.7, 2.2095)  # mean 0.47, tiny spread
        outcome = evaluate_expectation(exp, [_cell(1, m=near)])
        assert outcome.verdict == "pass" and outcome.confirmed
        far = MeanEstimator().update(10, 1.0, 0.101)  # mean 0.1, tiny spread
        assert evaluate_expectation(exp, [_cell(1, m=far)]).verdict == "fail"

    def test_ci_overlap_underpowered_is_inconclusive_not_pass(self):
        """A measured CI wider than the paper's slack cannot distinguish
        the claim from a refutation; it must not vacuously pass."""
        exp = Expectation(metric="m", kind="ci_overlap", value=0.5, tolerance=0.05)
        # mean 0.5 but huge spread: CI ~ [0.14, 0.86] swallows the
        # paper interval entirely.
        noisy = MeanEstimator().update(4, 2.0, 1.96)
        outcome = evaluate_expectation(exp, [_cell(1, m=noisy)])
        assert outcome.verdict == "inconclusive"

    def test_exact_never_inconclusive(self):
        exp = Expectation(metric="p", kind="exact", value=0.0, tolerance=0.0)
        assert (
            evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(0, 5))]).verdict
            == "pass"
        )
        assert (
            evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(1, 5))]).verdict
            == "fail"
        )

    def test_axes_filter_and_skip(self):
        exp = Expectation(metric="p", kind="upper_bound", value=0.1, axes=(1, 99))
        outcome = evaluate_expectation(
            exp, [_cell(1, p=SequentialEstimator(0, 20)), _cell(2, p=SequentialEstimator(20, 20))]
        )
        # Cell 2 is not judged (not in axes); 99 is reported skipped.
        assert outcome.verdict == "pass"
        assert outcome.skipped_axes == (99,)

    def test_missing_metric_is_inconclusive_not_pass(self):
        exp = Expectation(metric="absent", kind="upper_bound", value=0.1)
        outcome = evaluate_expectation(exp, [_cell(1, p=SequentialEstimator(0, 5))])
        assert outcome.verdict == "inconclusive"

    def test_worst_verdict_ordering(self):
        assert worst_verdict([]) == "pass"
        assert worst_verdict(["pass", "inconclusive"]) == "inconclusive"
        assert worst_verdict(["inconclusive", "fail", "pass"]) == "fail"

    def test_expectation_validation(self):
        with pytest.raises(ValueError):
            Expectation(metric="p", kind="between", value=0.5)
        with pytest.raises(ValueError):
            Expectation(metric="p", kind="exact", value=0.5, tolerance=-0.1)
        with pytest.raises(ValueError):
            Expectation(metric="p", kind="exact", value=0.5, axes=())

    def test_describe_mentions_bound_and_axes(self):
        exp = Expectation(metric="ber", kind="upper_bound", value=0.15, axes=(0.25,))
        assert "ber <= 0.15" in exp.describe()
        assert "0.25" in exp.describe()
