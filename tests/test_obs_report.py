"""Tests for trace analysis (``repro report``) and the logging surface."""

import json
import logging

import pytest

from repro.campaigns.cli import main
from repro.obs.log import (
    LOG_ENV,
    configure_logging,
    console,
    get_logger,
    resolve_log_level,
)
from repro.obs.report import find_runs, load_trace, summarize_run
from repro.obs.trace import Tracer


def _write_trace(cache_dir, scenario="demo", run_id=None, **manifest):
    tracer = Tracer(cache_dir, scenario, run_id=run_id)
    tracer.start_run({"scenario": scenario, **manifest})
    return tracer


class TestFindRuns:
    def test_empty_root_finds_nothing(self, tmp_path):
        assert find_runs(tmp_path) == []

    def test_filters_by_scenario_and_orders_by_start(self, tmp_path):
        first = _write_trace(
            tmp_path, "alpha", run_id="one", started="2026-01-01"
        )
        first.finish()
        second = _write_trace(tmp_path, "alpha", run_id="two")
        second.finish()
        other = _write_trace(tmp_path, "beta", run_id="three")
        other.finish()
        runs = find_runs(tmp_path, scenario="alpha")
        assert [r.run_id for r in runs] == ["one", "two"]
        assert runs[-1].manifest["scenario"] == "alpha"
        assert [r.run_id for r in find_runs(tmp_path)] == [
            "one", "two", "three",
        ]

    def test_skips_unreadable_traces(self, tmp_path):
        good = _write_trace(tmp_path, "alpha", run_id="good")
        good.finish()
        bad = tmp_path / "runs" / "bad"
        bad.mkdir(parents=True)
        (bad / "trace.jsonl").write_text("not json\n")
        assert [r.run_id for r in find_runs(tmp_path)] == ["good"]


class TestLoadTrace:
    def test_round_trips_manifest_and_events(self, tmp_path):
        tracer = _write_trace(tmp_path, "demo", seed=3)
        tracer.emit("unit", key="u1", status="computed", exec_s=0.5)
        tracer.finish(total_units=1)
        manifest, events = load_trace(tracer.path)
        assert manifest["scenario"] == "demo"
        assert manifest["seed"] == 3
        assert [e["type"] for e in events] == ["unit", "summary"]

    def test_tolerates_a_truncated_tail(self, tmp_path):
        tracer = _write_trace(tmp_path, "demo")
        tracer.emit("unit", key="u1", status="computed", exec_s=0.5)
        tracer.finish()
        with open(tracer.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "unit", "key": "torn')  # killed mid-write
        manifest, events = load_trace(tracer.path)
        assert len(events) == 2  # the torn line is skipped, not fatal

    def test_manifest_only_trace_loads_and_summarizes(self, tmp_path):
        # A run SIGKILLed right after start: the durable manifest line
        # is all there is.  Loading and summarizing must both work --
        # that is what lets `repro report` identify an in-flight or
        # dead run.
        tracer = _write_trace(tmp_path, "demo", seed=7)
        manifest, events = load_trace(tracer.path)
        assert manifest["scenario"] == "demo"
        assert events == []
        summary = summarize_run(manifest, events)
        assert summary["cache"]["total"] == 0
        assert summary["stages"] == {}
        assert summary["summary"] is None  # no closing summary event
        tracer.finish()

    def test_missing_manifest_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "unit", "key": "u1"}\n')
        with pytest.raises(ValueError, match="manifest"):
            load_trace(path)


def _synthetic_run():
    manifest = {
        "type": "manifest",
        "run_id": "demo-run",
        "scenario": "demo",
        "scenario_hash": "abc123",
        "workers": 2,
        "effective_workers": 2,
    }
    events = [
        {"type": "phase", "name": "plan", "seconds": 0.001, "units": 4},
        {"type": "unit", "key": "h1", "coords": {"chunk": 0},
         "status": "hit", "load_s": 0.002},
        {"type": "unit", "key": "c1", "coords": {"chunk": 1},
         "status": "computed", "queue_s": 0.01, "exec_s": 0.5,
         "flush_s": 0.004, "pid": 100, "result_bytes": 600},
        {"type": "unit", "key": "c2", "coords": {"chunk": 2},
         "status": "computed", "queue_s": 0.02, "exec_s": 1.5,
         "flush_s": 0.006, "pid": 101, "result_bytes": 400},
        {"type": "phase", "name": "execute", "seconds": 2.0, "units": 2,
         "workers": 2},
        {"type": "metrics",
         "metrics": {"counters": {"store.put": 2}, "timings": {}}},
        {"type": "metrics",
         "metrics": {"counters": {"store.put": 1}, "timings": {}}},
        {"type": "summary", "t": 2.1, "wall_s": 2.1, "total_units": 3},
    ]
    return manifest, events


class TestSummarizeRun:
    def test_cache_and_stage_summaries(self):
        summary = summarize_run(*_synthetic_run())
        assert summary["run_id"] == "demo-run"
        assert summary["cache"] == {
            "hits": 1, "computed": 2, "total": 3,
            "hit_rate": pytest.approx(1 / 3),
        }
        execute = summary["stages"]["execute"]
        assert execute["count"] == 2
        assert execute["total_s"] == pytest.approx(2.0)
        assert execute["p50_s"] == pytest.approx(1.0)
        assert execute["max_s"] == pytest.approx(1.5)
        assert summary["stages"]["load"]["count"] == 1
        assert summary["bytes"]["results"] == 1000

    def test_worker_utilization_against_execute_wall(self):
        summary = summarize_run(*_synthetic_run())
        workers = summary["workers"]
        assert workers["configured"] == 2
        assert workers["observed_pids"] == [100, 101]
        assert workers["busy_s"] == pytest.approx(2.0)
        # 2.0 busy seconds over 2 workers x 2.0 s wall = 50%.
        assert workers["utilization"] == pytest.approx(0.5)

    def test_utilization_uses_effective_workers_when_forced_serial(self):
        manifest, events = _synthetic_run()
        manifest["workers"] = 4
        manifest["effective_workers"] = 1
        workers = summarize_run(manifest, events)["workers"]
        assert workers["utilization"] == pytest.approx(1.0)  # capped

    def test_slowest_units_sorted_and_limited(self):
        summary = summarize_run(*_synthetic_run(), slowest=1)
        assert [u["key"] for u in summary["slowest"]] == ["c2"]
        assert summary["slowest"][0]["exec_s"] == pytest.approx(1.5)

    def test_metrics_events_merge(self):
        summary = summarize_run(*_synthetic_run())
        assert summary["metrics"]["counters"] == {"store.put": 3}

    def test_interrupted_trace_has_no_summary(self):
        manifest, events = _synthetic_run()
        events = [e for e in events if e["type"] != "summary"]
        summary = summarize_run(manifest, events)
        assert summary["summary"] is None


class TestReportCli:
    def _traced_run(self, tmp_path):
        assert main([
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--trace", "--format", "json",
        ]) == 0

    def test_report_renders_the_diagnostics(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(
            ["report", "attack-success-shielded", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "execute latency" in out
        assert "worker utilization" in out
        assert "slowest unit" in out
        assert "manifest: kind=attack" in out
        assert "trace: " in out

    def test_report_json_payload(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "report", "attack-success-shielded",
            "--cache-dir", str(tmp_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "attack-success-shielded"
        assert payload["cache"]["computed"] == 1
        assert payload["manifest"]["trace_schema"] == 1
        assert "execute" in payload["stages"]

    def test_report_selects_a_run_by_id(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        self._traced_run(tmp_path)  # second run: all hits
        capsys.readouterr()
        from repro.obs.report import find_runs as _find

        runs = _find(tmp_path, scenario="attack-success-shielded")
        assert len(runs) == 2
        assert main([
            "report", "attack-success-shielded",
            "--cache-dir", str(tmp_path),
            "--run-id", runs[0].run_id, "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == runs[0].run_id
        assert payload["cache"]["computed"] == 1  # the first (cold) run

    def test_latest_run_is_the_default(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        self._traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "report", "attack-success-shielded",
            "--cache-dir", str(tmp_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["hits"] == 1  # the warm second run

    def test_no_traced_runs_exits_with_guidance(self, tmp_path):
        with pytest.raises(SystemExit, match="--trace"):
            main([
                "report", "attack-success-shielded",
                "--cache-dir", str(tmp_path),
            ])

    def test_unknown_run_id_exits_with_error(self, tmp_path):
        self._traced_run(tmp_path)
        with pytest.raises(SystemExit, match="no traced run"):
            main([
                "report", "attack-success-shielded",
                "--cache-dir", str(tmp_path), "--run-id", "nope",
            ])

    def test_omitted_scenario_reports_the_most_recent_run(
        self, capsys, tmp_path
    ):
        self._traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "report", "--cache-dir", str(tmp_path), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "attack-success-shielded"

    def test_omitted_scenario_with_no_runs_exits_with_guidance(
        self, tmp_path
    ):
        with pytest.raises(SystemExit, match="no traced runs"):
            main(["report", "--cache-dir", str(tmp_path)])

    def test_list_runs_table(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        self._traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "report", "--cache-dir", str(tmp_path), "--list-runs",
        ]) == 0
        out = capsys.readouterr().out
        assert "run id" in out
        assert out.count("attack-success-shielded-") >= 2

    def test_list_runs_json_and_scenario_filter(self, capsys, tmp_path):
        self._traced_run(tmp_path)
        other = _write_trace(tmp_path, "beta", run_id="beta-run")
        other.finish()
        capsys.readouterr()
        assert main([
            "report", "attack-success-shielded",
            "--cache-dir", str(tmp_path), "--list-runs",
            "--format", "json",
        ]) == 0
        runs = json.loads(capsys.readouterr().out)
        assert len(runs) == 1
        assert runs[0]["scenario"] == "attack-success-shielded"
        assert {"run_id", "role", "started_at"} <= set(runs[0])


class TestLogging:
    def test_resolve_log_level_precedence(self, monkeypatch):
        monkeypatch.delenv(LOG_ENV, raising=False)
        assert resolve_log_level() == logging.WARNING
        monkeypatch.setenv(LOG_ENV, "debug")
        assert resolve_log_level() == logging.DEBUG
        assert resolve_log_level("error") == logging.ERROR  # flag wins

    def test_junk_level_raises(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV, "loud")
        with pytest.raises(ValueError, match="loud"):
            resolve_log_level()

    def test_configure_is_idempotent(self):
        configure_logging("info")
        configure_logging("info")
        root = logging.getLogger("repro")
        handlers = [h for h in root.handlers]
        assert len(handlers) == 1
        configure_logging()  # back to the default level

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("campaigns").name == "repro.campaigns"
        assert get_logger().name == "repro"

    def test_console_is_byte_identical_to_print(self, capsys):
        print("reference line")
        reference = capsys.readouterr().out
        console("reference line")
        assert capsys.readouterr().out == reference

    def test_console_stays_off_stderr(self, capsys):
        configure_logging("debug")
        console("stdout only")
        captured = capsys.readouterr()
        assert captured.out == "stdout only\n"
        assert captured.err == ""
        configure_logging()

    def test_diagnostics_go_to_stderr(self, capsys):
        configure_logging("info")
        get_logger("cli").info("diagnostic line")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "INFO repro.cli: diagnostic line" in captured.err
        configure_logging()

    def test_cli_log_level_flag_raises_verbosity(self, capsys, tmp_path):
        assert main([
            "status", "attack-success-shielded",
            "--cache-dir", str(tmp_path), "--log-level", "debug",
        ]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        configure_logging()

    def test_cli_junk_log_env_exits_with_error(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(LOG_ENV, "loud")
        assert main([
            "status", "attack-success-shielded", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "error" in capsys.readouterr().err
        monkeypatch.delenv(LOG_ENV)
        configure_logging()
