"""Tests for CFO estimation, band-pass filters, and the OFDM extension."""

import numpy as np
import pytest

from repro.phy.cfo import apply_cfo, compensate_cfo, estimate_cfo_from_tone
from repro.phy.filters import complex_bandpass, dual_tone_filter, lowpass
from repro.phy.fsk import FSKModulator, NoncoherentFSKDemodulator
from repro.phy.ofdm import (
    OFDMConfig,
    OFDMDemodulator,
    OFDMModulator,
    apply_subcarrier_channel,
)
from repro.phy.signal import Waveform


class TestCFO:
    def test_estimate_recovers_offset(self, rng):
        ref = FSKModulator().modulate(rng.integers(0, 2, size=200))
        shifted = apply_cfo(ref, 1500.0)
        estimate = estimate_cfo_from_tone(shifted, ref)
        assert estimate == pytest.approx(1500.0, abs=20.0)

    def test_estimate_with_noise(self, rng):
        ref = FSKModulator().modulate(rng.integers(0, 2, size=500))
        shifted = apply_cfo(ref, -800.0).with_noise(0.01, rng)
        estimate = estimate_cfo_from_tone(shifted, ref)
        assert estimate == pytest.approx(-800.0, abs=60.0)

    def test_compensation_restores_decoding(self, rng):
        """The shield 'compensates for any carrier frequency offset' (S6a)."""
        bits = rng.integers(0, 2, size=300)
        clean = FSKModulator().modulate(bits)
        # An uncompensated 8 kHz offset degrades the envelope detector.
        shifted = apply_cfo(clean, 8e3)
        estimate = estimate_cfo_from_tone(shifted, clean)
        fixed = compensate_cfo(shifted, estimate)
        ber = NoncoherentFSKDemodulator().bit_error_rate(fixed, bits)
        assert ber == 0.0

    def test_rejects_rate_mismatch(self):
        a = Waveform(np.ones(10), 1e6)
        b = Waveform(np.ones(10), 2e6)
        with pytest.raises(ValueError):
            estimate_cfo_from_tone(a, b)

    def test_rejects_too_short(self):
        a = Waveform(np.ones(1), 1e6)
        with pytest.raises(ValueError):
            estimate_cfo_from_tone(a, a)


def _tone(freq_hz: float, n: int = 4096, fs: float = 600e3) -> Waveform:
    t = np.arange(n) / fs
    return Waveform(np.exp(2j * np.pi * freq_hz * t), fs)


class TestFilters:
    def test_bandpass_keeps_in_band_tone(self):
        out = complex_bandpass(_tone(50e3), 50e3, 25e3)
        assert out.power() == pytest.approx(1.0, rel=0.1)

    def test_bandpass_rejects_out_of_band_tone(self):
        out = complex_bandpass(_tone(-50e3), 50e3, 25e3)
        assert out.power() < 0.01

    def test_dual_tone_keeps_both_tones(self):
        for f in (-50e3, 50e3):
            out = dual_tone_filter(_tone(f), -50e3, 50e3, 25e3)
            assert out.power() > 0.8

    def test_dual_tone_rejects_middle(self):
        out = dual_tone_filter(_tone(0.0), -50e3, 50e3, 20e3)
        assert out.power() < 0.05

    def test_lowpass(self):
        assert lowpass(_tone(10e3), 50e3).power() == pytest.approx(1.0, rel=0.1)
        assert lowpass(_tone(200e3), 50e3).power() < 0.01

    def test_bandpass_validation(self):
        with pytest.raises(ValueError):
            complex_bandpass(_tone(0), 0, 400e3)

    def test_lowpass_validation(self):
        with pytest.raises(ValueError):
            lowpass(_tone(0), -1.0)


class TestOFDM:
    def test_round_trip(self, rng):
        cfg = OFDMConfig()
        grid = OFDMModulator.random_qpsk(4, cfg.n_subcarriers, rng)
        w = OFDMModulator(cfg).modulate(grid)
        out = OFDMDemodulator(cfg).demodulate(w)
        assert np.allclose(out, grid, atol=1e-9)

    def test_round_trip_through_multipath(self, rng):
        """The cyclic prefix absorbs multipath: per-subcarrier channel is
        flat, so equalisation is a one-tap divide (S5's wideband model)."""
        cfg = OFDMConfig()
        grid = OFDMModulator.random_qpsk(6, cfg.n_subcarriers, rng)
        w = OFDMModulator(cfg).modulate(grid)
        taps = np.array([1.0, 0.4 - 0.2j, 0.1j])
        rx = apply_subcarrier_channel(w, taps, cfg)
        out = OFDMDemodulator(cfg).demodulate(rx)
        channel_freq = np.fft.fft(taps, cfg.n_subcarriers)
        equalised = out / channel_freq
        assert np.allclose(equalised, grid, atol=1e-6)

    def test_rejects_long_channel(self):
        cfg = OFDMConfig(n_subcarriers=32, cyclic_prefix=4)
        w = OFDMModulator(cfg).modulate(np.ones((1, 32)))
        with pytest.raises(ValueError):
            apply_subcarrier_channel(w, np.ones(9), cfg)

    def test_rejects_wrong_subcarrier_count(self):
        with pytest.raises(ValueError):
            OFDMModulator(OFDMConfig()).modulate(np.ones((1, 5)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OFDMConfig(n_subcarriers=1)
        with pytest.raises(ValueError):
            OFDMConfig(cyclic_prefix=64, n_subcarriers=64)

    def test_demodulate_rejects_short(self):
        cfg = OFDMConfig()
        with pytest.raises(ValueError):
            OFDMDemodulator(cfg).demodulate(Waveform(np.ones(8), cfg.sample_rate))
