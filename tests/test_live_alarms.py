"""Alarm pipeline: rules, simulated-time rate limiting, notifier fan-out.

The architectural invariant under test is the safety split: this layer
is notification-only (it consumes immutable events and can at most
*count and tell*), rate limiting and rate rules run on simulated time
so replays limit identically, and a broken notifier is disarmed rather
than allowed to stall anything.
"""

import pytest

from repro.live.alarms import (
    AlarmPipeline,
    CollectingNotifier,
    RateLimiter,
    RateRule,
    ShieldStateRule,
    ThresholdRule,
    default_rules,
)
from repro.live.events import LiveEvent


def _vitals(t, hr, patient=0):
    return LiveEvent(t, patient, "vitals", {"hr_bpm": hr})


def _attack(t, patient=0, **flags):
    data = {
        "shield_worn": True,
        "imd_accepted": False,
        "alarm_raised": False,
        "shield_jammed": False,
    }
    data.update(flags)
    return LiveEvent(t, patient, "attack", data)


class TestThresholdRule:
    def test_fires_above_high(self):
        rule = ThresholdRule("tachy", event_field="hr_bpm", high=140.0)
        alarm = rule.evaluate(_vitals(3.0, 150.0))
        assert alarm is not None
        assert alarm.rule == "tachy" and alarm.time_s == 3.0
        assert "above" in alarm.message

    def test_fires_below_low(self):
        rule = ThresholdRule("brady", event_field="hr_bpm", low=40.0)
        alarm = rule.evaluate(_vitals(3.0, 35.0))
        assert alarm is not None and "below" in alarm.message

    def test_silent_inside_band_and_on_other_kinds(self):
        rule = ThresholdRule(
            "band", event_field="hr_bpm", low=40.0, high=140.0
        )
        assert rule.evaluate(_vitals(0.0, 80.0)) is None
        assert rule.evaluate(_attack(0.0)) is None
        assert rule.evaluate(
            LiveEvent(0.0, 0, "vitals", {"spo2": 99})
        ) is None

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError, match="bound"):
            ThresholdRule("nothing", event_field="hr_bpm")


class TestRateRule:
    def test_fires_on_threshold_inside_window(self):
        rule = RateRule("dos", window_s=10.0, threshold=3)
        assert rule.evaluate(_attack(0.0)) is None
        assert rule.evaluate(_attack(1.0)) is None
        alarm = rule.evaluate(_attack(2.0))
        assert alarm is not None and alarm.severity == "critical"

    def test_slow_drip_never_fires(self):
        rule = RateRule("dos", window_s=10.0, threshold=3)
        for t in (0.0, 20.0, 40.0, 60.0):
            assert rule.evaluate(_attack(t)) is None

    def test_patients_are_isolated(self):
        rule = RateRule("dos", window_s=10.0, threshold=3)
        assert rule.evaluate(_attack(0.0, patient=1)) is None
        assert rule.evaluate(_attack(1.0, patient=2)) is None
        assert rule.evaluate(_attack(2.0, patient=1)) is None
        assert rule.evaluate(_attack(3.0, patient=1)) is not None

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError, match="window_s"):
            RateRule("dos", window_s=0.0)
        with pytest.raises(ValueError, match="threshold"):
            RateRule("dos", threshold=1)


class TestShieldStateRule:
    def test_unshielded_acceptance_is_critical(self):
        alarm = ShieldStateRule().evaluate(
            _attack(5.0, shield_worn=False, imd_accepted=True)
        )
        assert alarm is not None and alarm.severity == "critical"
        assert "unauthorized" in alarm.message

    def test_interlock_trip_is_mirrored_as_warning(self):
        alarm = ShieldStateRule().evaluate(
            _attack(5.0, alarm_raised=True, shield_jammed=True)
        )
        assert alarm is not None and alarm.severity == "warning"
        assert alarm.data["shield_jammed"] is True

    def test_clean_defence_is_silent(self):
        assert ShieldStateRule().evaluate(
            _attack(5.0, shield_jammed=True)
        ) is None


class TestRateLimiter:
    def test_limits_per_rule_and_patient_on_sim_time(self):
        limiter = RateLimiter(min_interval_s=30.0)
        rule = ThresholdRule("tachy", event_field="hr_bpm", high=140.0)
        first = rule.evaluate(_vitals(0.0, 150.0))
        again = rule.evaluate(_vitals(10.0, 150.0))
        later = rule.evaluate(_vitals(31.0, 150.0))
        other = rule.evaluate(_vitals(10.0, 150.0, patient=7))
        assert limiter.allow(first)
        assert not limiter.allow(again)  # same rule+patient, inside window
        assert limiter.allow(other)     # different patient
        assert limiter.allow(later)     # window elapsed (simulated)
        assert limiter.suppressed == 1

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            RateLimiter(min_interval_s=-1.0)


class TestAlarmPipeline:
    def test_fired_alarms_reach_every_notifier(self):
        sink_a, sink_b = CollectingNotifier(), CollectingNotifier()
        pipeline = AlarmPipeline(notifiers=[sink_a, sink_b])
        fired = pipeline.process(_vitals(0.0, 200.0))
        assert len(fired) == 1
        assert [a.rule for a in sink_a.alarms] == ["tachycardia"]
        assert [a.rule for a in sink_b.alarms] == ["tachycardia"]
        assert pipeline.fired_total == 1
        assert pipeline.fired_by_rule == {"tachycardia": 1}

    def test_suppressed_alarms_are_counted_not_lost(self):
        pipeline = AlarmPipeline()
        pipeline.process(_vitals(0.0, 200.0))
        fired = pipeline.process(_vitals(1.0, 200.0))
        assert fired == []
        assert pipeline.suppressed_total == 1
        assert pipeline.fired_total == 1

    def test_broken_notifier_is_disarmed_not_fatal(self):
        class Pager:
            def notify(self, alarm):
                raise RuntimeError("pager on fire")

        sink = CollectingNotifier()
        pipeline = AlarmPipeline(notifiers=[Pager(), sink])
        pipeline.process(_vitals(0.0, 200.0))
        pipeline.process(_vitals(100.0, 200.0))
        # The sink saw both; the pager was removed after its first failure.
        assert len(sink.alarms) == 2
        assert len(pipeline.notifiers) == 1

    def test_default_rules_cover_the_monitoring_claims(self):
        names = {
            getattr(rule, "name") for rule in default_rules()
        }
        assert names == {
            "tachycardia", "bradycardia", "battery-dos", "shield-state"
        }
