"""Tests for the wideband channelizer (S7(c)) and equalizer (S5 fn. 2)."""

import numpy as np
import pytest

from repro.phy.channelizer import WidebandChannelizer
from repro.phy.equalizer import (
    FIREqualizer,
    apply_fir,
    estimate_multipath_channel,
    mmse_equalizer,
    zero_forcing_equalizer,
)
from repro.phy.fsk import FSKModulator, NoncoherentFSKDemodulator
from repro.phy.signal import Waveform


class TestChannelizer:
    @pytest.fixture
    def channelizer(self):
        return WidebandChannelizer()

    def test_ten_channels_default(self, channelizer):
        assert channelizer.band.n_channels == 10
        assert channelizer.decimation == 10

    def test_compose_extract_round_trip(self, channelizer, rng):
        """A packet placed on channel 3 comes back out of channel 3."""
        bits = rng.integers(0, 2, size=120)
        narrow = FSKModulator().modulate(bits)
        wideband = channelizer.compose({3: narrow})
        recovered = channelizer.extract(wideband, 3)
        decoded = NoncoherentFSKDemodulator().demodulate(recovered, n_bits=len(bits))
        assert np.mean(decoded != bits) < 0.02

    def test_adjacent_channel_isolation(self, channelizer, rng):
        """Energy on channel 3 must not leak into channels 2 or 4."""
        bits = rng.integers(0, 2, size=200)
        narrow = FSKModulator().modulate(bits)
        wideband = channelizer.compose({3: narrow})
        on_channel = channelizer.extract(wideband, 3).power()
        for neighbour in (2, 4):
            leak = channelizer.extract(wideband, neighbour).power()
            assert leak < on_channel / 100.0

    def test_simultaneous_channels_all_recovered(self, channelizer, rng):
        """S7(c): an adversary transmitting on several channels at once
        is still visible on each of them."""
        packets = {}
        for ch in (0, 5, 9):
            bits = rng.integers(0, 2, size=100)
            packets[ch] = (bits, FSKModulator().modulate(bits))
        wideband = channelizer.compose({ch: w for ch, (b, w) in packets.items()})
        for ch, (bits, _) in packets.items():
            recovered = channelizer.extract(wideband, ch)
            decoded = NoncoherentFSKDemodulator().demodulate(
                recovered, n_bits=len(bits)
            )
            assert np.mean(decoded != bits) < 0.05, f"channel {ch}"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            WidebandChannelizer(wideband_rate=1e6)
        with pytest.raises(ValueError):
            WidebandChannelizer(wideband_rate=6.1e6)

    def test_extract_rejects_wrong_rate(self, channelizer):
        with pytest.raises(ValueError):
            channelizer.extract(Waveform(np.ones(100), 1e6), 0)

    def test_compose_rejects_wrong_rate(self, channelizer):
        with pytest.raises(ValueError):
            channelizer.compose({0: Waveform(np.ones(100), 1e6)})

    def test_compose_empty_rejected(self, channelizer):
        with pytest.raises(ValueError):
            channelizer.compose({})


class TestEqualizer:
    def test_channel_estimation_recovers_taps(self, rng):
        probe = Waveform(
            rng.standard_normal(2048) + 1j * rng.standard_normal(2048), 600e3
        )
        true_taps = np.array([1.0, 0.4 - 0.2j, -0.1j])
        received = Waveform(
            np.convolve(probe.samples, true_taps)[: len(probe)], 600e3
        )
        estimate = estimate_multipath_channel(probe, received, n_taps=3)
        assert np.allclose(estimate, true_taps, atol=1e-6)

    def test_estimation_with_noise_close(self, rng):
        probe = Waveform(
            rng.standard_normal(4096) + 1j * rng.standard_normal(4096), 600e3
        )
        true_taps = np.array([1.0, 0.3, 0.1])
        rx = np.convolve(probe.samples, true_taps)[: len(probe)]
        received = Waveform(rx, 600e3).with_noise(0.01, rng)
        estimate = estimate_multipath_channel(probe, received, n_taps=3)
        assert np.allclose(estimate, true_taps, atol=0.05)

    def test_zero_forcing_inverts_channel(self, rng):
        taps = np.array([1.0, 0.5, 0.2])
        eq = zero_forcing_equalizer(taps, n_taps=48)
        cascade = np.convolve(taps, eq.taps)
        # The cascade should be ~ a unit impulse at the design delay.
        assert abs(cascade[eq.delay] - 1.0) < 1e-3
        off_peak = np.delete(np.abs(cascade), eq.delay)
        assert np.max(off_peak) < 0.01

    def test_mmse_handles_nulls(self):
        # This channel has a spectral null at Nyquist; ZF must refuse,
        # MMSE must cope.
        taps = np.array([1.0, 1.0])
        with pytest.raises(ValueError):
            zero_forcing_equalizer(taps)
        eq = mmse_equalizer(taps, noise_to_signal=0.1)
        assert np.all(np.isfinite(eq.taps))

    def test_equalized_fsk_decodes(self, rng):
        """End-to-end: multipath breaks FSK decoding, the equaliser
        restores it -- the footnote-2 alternative to OFDM."""
        bits = rng.integers(0, 2, size=600)
        clean = FSKModulator().modulate(bits)
        # A deep in-band notch: enough ISI to break the envelope detector.
        channel = np.array([1.0, -0.85, 0.0, 0.5j])
        distorted = Waveform(
            np.convolve(clean.samples, channel)[: len(clean)], 600e3
        )
        demod = NoncoherentFSKDemodulator()
        raw_ber = np.mean(demod.demodulate(distorted, n_bits=len(bits)) != bits)
        eq = mmse_equalizer(channel, noise_to_signal=1e-3, n_taps=96)
        fixed = eq.apply(distorted)
        eq_ber = np.mean(demod.demodulate(fixed, n_bits=len(bits)) != bits)
        assert raw_ber > 0.1  # the channel genuinely breaks decoding
        assert eq_ber < raw_ber / 4
        assert eq_ber < 0.03

    def test_equalizer_apply_preserves_alignment(self, rng):
        """apply() must hand back a signal aligned with the original."""
        bits = rng.integers(0, 2, size=200)
        clean = FSKModulator().modulate(bits)
        channel = np.array([1.0, 0.3 + 0.2j])
        distorted = Waveform(
            np.convolve(clean.samples, channel)[: len(clean)], 600e3
        )
        eq = zero_forcing_equalizer(channel, n_taps=64)
        fixed = eq.apply(distorted)
        assert len(fixed) == len(clean)
        decoded = NoncoherentFSKDemodulator().demodulate(fixed, n_bits=len(bits))
        assert np.mean(decoded != bits) < 0.02

    def test_estimate_then_equalize(self, rng):
        """The full footnote-2 loop: estimate the channel from a probe,
        build the equaliser from the *estimate*, decode."""
        probe = Waveform(
            rng.standard_normal(4096) + 1j * rng.standard_normal(4096), 600e3
        )
        channel = np.array([1.0, -0.7, 0.3j])
        probe_rx = Waveform(
            np.convolve(probe.samples, channel)[: len(probe)], 600e3
        ).with_noise(1e-3, rng)
        estimate = estimate_multipath_channel(probe, probe_rx, n_taps=3)
        bits = rng.integers(0, 2, size=400)
        clean = FSKModulator().modulate(bits)
        distorted = Waveform(
            np.convolve(clean.samples, channel)[: len(clean)], 600e3
        )
        eq = mmse_equalizer(estimate, noise_to_signal=1e-3, n_taps=96)
        fixed = eq.apply(distorted)
        decoded = NoncoherentFSKDemodulator().demodulate(fixed, n_bits=len(bits))
        assert np.mean(decoded != bits) < 0.03

    def test_validation(self, rng):
        probe = Waveform(np.ones(16), 600e3)
        with pytest.raises(ValueError):
            estimate_multipath_channel(probe, probe, n_taps=0)
        with pytest.raises(ValueError):
            estimate_multipath_channel(probe, probe, n_taps=8)
        with pytest.raises(ValueError):
            zero_forcing_equalizer(np.array([]))
        with pytest.raises(ValueError):
            mmse_equalizer(np.array([1.0]), noise_to_signal=-1.0)
        with pytest.raises(ValueError):
            FIREqualizer(np.ones(4), delay=9)
