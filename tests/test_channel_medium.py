"""Tests for the waveform-level medium."""

import numpy as np
import pytest

from repro.channel.medium import Transmission, WaveformMedium
from repro.phy.signal import Waveform


def _ones(n=100):
    return Waveform(np.ones(n), 600e3)


class TestWaveformMedium:
    def test_single_link_scaling(self, rng):
        medium = WaveformMedium(rng)
        medium.set_gain("a", "b", 0.5)
        rx = medium.receive("b", [Transmission("a", _ones())])
        assert rx.power() == pytest.approx(0.25)

    def test_loss_db_sets_power(self, rng):
        medium = WaveformMedium(rng)
        medium.set_loss_db("a", "b", 20.0, random_phase=False)
        rx = medium.receive("b", [Transmission("a", _ones())])
        assert rx.power() == pytest.approx(0.01, rel=1e-6)

    def test_linear_combination(self, rng):
        """S6: the channel linearly combines concurrent transmissions."""
        medium = WaveformMedium(rng)
        medium.set_gain("imd", "eve", 1.0)
        medium.set_gain("jammer", "eve", 1.0)
        rx = medium.receive(
            "eve",
            [Transmission("imd", _ones()), Transmission("jammer", _ones())],
        )
        assert np.allclose(rx.samples, 2.0)

    def test_delay_applied(self, rng):
        medium = WaveformMedium(rng)
        medium.set_gain("a", "b", 1.0)
        rx = medium.receive("b", [Transmission("a", _ones(4), delay_samples=2)])
        assert np.allclose(rx.samples[:2], 0.0)
        assert len(rx) == 6

    def test_missing_link_is_loud_error(self, rng):
        medium = WaveformMedium(rng)
        with pytest.raises(KeyError):
            medium.receive("b", [Transmission("a", _ones())])

    def test_noise_power_added(self, rng):
        medium = WaveformMedium(rng)
        medium.set_gain("a", "b", 0.0)
        rx = medium.receive(
            "b", [Transmission("a", _ones(50_000))], noise_power=0.3
        )
        assert rx.power() == pytest.approx(0.3, rel=0.05)

    def test_empty_receive_rejected(self, rng):
        with pytest.raises(ValueError):
            WaveformMedium(rng).receive("b", [])

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Transmission("a", _ones(), delay_samples=-1)

    def test_has_link(self, rng):
        medium = WaveformMedium(rng)
        medium.set_gain("a", "b", 1.0)
        assert medium.has_link("a", "b")
        assert not medium.has_link("b", "a")
