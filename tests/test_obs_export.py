"""Prometheus exposition: collection, rendering, validation, serving.

The exporter is read-only plumbing between the campaign state the
store already holds and the text format scrapers expect, so the tests
check three seams: the gauges reflect cache/queue/progress/history
state, the rendered text survives the strict validator (and malformed
text does not), and the stdlib HTTP endpoint serves a fresh scrape.
"""

import json
import urllib.request

import pytest

from repro.campaigns import registry
from repro.campaigns.cache import ResultCache
from repro.campaigns.cli import main
from repro.obs.export import (
    METRIC_PREFIX,
    Metric,
    collect_metrics,
    render_exposition,
    serve_metrics,
    validate_exposition,
)


def _scenario():
    return registry.get("fleet-attack-prevalence").override(
        n_patients=20, n_trials=1, chunk_size=5
    )


def _run(tmp_path, backend="sqlite", traced=False):
    scenario = _scenario()
    from repro.campaigns.runner import CampaignRunner

    tracer = None
    if traced:
        from repro.obs.trace import Tracer

        tracer = Tracer(tmp_path, scenario.name)
    CampaignRunner(
        scenario, cache_dir=tmp_path, cache_backend=backend, tracer=tracer
    ).run()
    return scenario


def _render(tmp_path, scenario, backend="sqlite"):
    cache = ResultCache(tmp_path, backend=backend)
    return render_exposition(collect_metrics(cache, scenario))


class TestCollectAndRender:
    def test_completed_campaign_exposes_core_gauges(self, tmp_path):
        scenario = _run(tmp_path)
        text = _render(tmp_path, scenario)
        names = validate_exposition(text)
        assert f"{METRIC_PREFIX}campaign_units" in names
        assert f"{METRIC_PREFIX}campaign_complete" in names
        assert f"{METRIC_PREFIX}queue_entries" in names
        assert all(name.startswith(METRIC_PREFIX) for name in names)
        assert 'state="planned"' in text
        assert f'scenario="{scenario.name}"' in text
        assert f"{METRIC_PREFIX}campaign_complete{{scenario=" in text

    def test_fresh_campaign_reports_zero_cached(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        text = render_exposition(collect_metrics(cache, scenario))
        validate_exposition(text)
        assert 'state="cached"} 0' in text
        assert f"{METRIC_PREFIX}campaign_complete" in text

    def test_filesystem_backend_omits_queue_gauges(self, tmp_path):
        scenario = _run(tmp_path, backend="filesystem")
        text = _render(tmp_path, scenario, backend="filesystem")
        assert f"{METRIC_PREFIX}queue_entries" not in text

    def test_progress_snapshots_become_participant_gauges(self, tmp_path):
        scenario = _run(tmp_path)
        text = _render(tmp_path, scenario)
        # The runner's own default-on progress snapshot is exported.
        assert f"{METRIC_PREFIX}progress_done_units" in text
        assert 'role="runner"' in text

    def test_history_entry_becomes_last_run_gauges(self, tmp_path):
        scenario = _run(tmp_path, traced=True)
        text = _render(tmp_path, scenario)
        names = validate_exposition(text)
        assert f"{METRIC_PREFIX}last_run_wall_seconds" in names
        assert f"{METRIC_PREFIX}last_run_stage_seconds" in names
        assert 'quantile="0.5"' in text
        assert 'quantile="0.9"' in text

    def test_label_values_are_escaped(self):
        metric = Metric("weird", "labels with every escape")
        metric.add({"source": 'a"b\\c\nd'}, 1)
        text = render_exposition([metric])
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == [f"{METRIC_PREFIX}weird"]

    def test_none_samples_are_dropped(self):
        metric = Metric("maybe", "gauge with missing value")
        metric.add({"x": "1"}, None)
        assert metric.samples == []
        assert render_exposition([metric]) == ""


class TestCollectLiveMetrics:
    _SNAPSHOT = {
        "running": True, "finished": False, "active_sessions": 100,
        "sim_time_s": 12.5, "behind_s": 0.0,
        "events_by_kind": {"vitals": 1200, "attack": 5, "session": 100},
        "events_per_s": 10400.0, "alarms_fired": 4,
        "alarms_suppressed": 9, "alarms_by_rule": {"tachycardia": 4},
        "subscribers": 2, "frames_sent": 80, "frames_dropped": 3,
    }

    def test_live_snapshot_renders_valid_exposition(self):
        from repro.obs.export import collect_live_metrics

        text = render_exposition(collect_live_metrics(self._SNAPSHOT))
        names = validate_exposition(text)
        for expected in (
            "repro_live_engine_running",
            "repro_live_active_sessions",
            "repro_live_events",
            "repro_live_events_per_second",
            "repro_live_alarms",
            "repro_live_subscribers",
            "repro_live_frames",
        ):
            assert expected in names
        assert 'repro_live_events{kind="vitals"} 1200' in text
        assert 'repro_live_frames{state="dropped"} 3' in text

    def test_bare_engine_snapshot_renders_without_streaming_fields(self):
        from repro.obs.export import collect_live_metrics

        snapshot = {
            k: v for k, v in self._SNAPSHOT.items()
            if k not in ("subscribers", "frames_sent", "frames_dropped")
        }
        text = render_exposition(collect_live_metrics(snapshot))
        names = validate_exposition(text)
        assert "repro_live_subscribers" not in names
        assert "repro_live_frames" not in names


class TestValidator:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            validate_exposition("repro_thing 1\n")

    def test_rejects_malformed_sample(self):
        text = "# TYPE repro_thing gauge\nrepro_thing one\n"
        with pytest.raises(ValueError, match="malformed sample"):
            validate_exposition(text)

    def test_rejects_malformed_label_pair(self):
        text = '# TYPE repro_thing gauge\nrepro_thing{bad=unquoted} 1\n'
        with pytest.raises(ValueError, match="label pair"):
            validate_exposition(text)

    def test_rejects_empty_exposition(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_exposition("")

    def test_error_carries_line_number(self):
        text = "# TYPE repro_a gauge\nrepro_a 1\nnot a sample!\n"
        with pytest.raises(ValueError, match="line 3"):
            validate_exposition(text)


class TestServeMetrics:
    def test_endpoint_serves_fresh_scrapes(self, tmp_path):
        scenario = _run(tmp_path)
        cache = ResultCache(tmp_path, backend="sqlite")
        server = serve_metrics(cache, scenario, port=0)
        try:
            import threading

            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            validate_exposition(body)
            assert f"{METRIC_PREFIX}campaign_complete" in body
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as resp:
                assert resp.status == 200
                assert resp.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{host}:{port}/other", timeout=10
                )
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestExportMetricsCli:
    _ARGS = [
        "export-metrics", "fleet-attack-prevalence",
        "--patients", "20", "--trials", "1", "--chunk-size", "5",
        "--cache-backend", "sqlite",
    ]

    def test_writes_stdout_by_default(self, capsys, tmp_path):
        scenario = _run(tmp_path)
        del scenario
        capsys.readouterr()
        assert main([*self._ARGS, "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        validate_exposition(out)

    def test_writes_output_file(self, capsys, tmp_path):
        _run(tmp_path)
        target = tmp_path / "metrics" / "campaign.prom"
        assert main([
            *self._ARGS, "--cache-dir", str(tmp_path),
            "--output", str(target),
        ]) == 0
        validate_exposition(target.read_text(encoding="utf-8"))
