"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.campaigns.cli import main
from repro.experiments.sweeps import attack_success_sweep


def _run(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestList:
    def test_lists_builtin_scenarios(self, capsys):
        out = _run(capsys, "list")
        assert "attack-success-shielded" in out
        assert "passive-ber-by-location" in out
        assert "mimo-eavesdropper" in out

    def test_json_listing_parses(self, capsys):
        payload = json.loads(_run(capsys, "list", "--json"))
        names = {entry["name"] for entry in payload}
        assert "crypto-only-baseline" in names
        assert all("hash" in entry for entry in payload)


class TestRun:
    def test_run_reproduces_the_sweep_numbers(self, capsys, tmp_path):
        out = _run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "3", "--locations", "1,8",
            "--cache-dir", str(tmp_path), "--format", "json",
        )
        payload = json.loads(out)
        reference = attack_success_sweep(
            shield_present=False,
            n_trials=3,
            command="therapy",
            attacker="fcc",
            location_indices=(1, 8),
            seed=0,
        )
        assert payload["units"]["computed"] == 2
        for point in payload["points"]:
            ref = reference[point["axis"]]
            assert point["success_probability"] == ref.success_probability
            assert point["alarm_probability"] == ref.alarm_probability

    def test_second_run_completes_from_cache(self, capsys, tmp_path):
        argv = (
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--format", "json",
        )
        first = json.loads(_run(capsys, *argv))
        second = json.loads(_run(capsys, *argv))
        assert first["units"]["computed"] == 1
        assert second["units"]["computed"] == 0
        assert second["points"] == first["points"]

    def test_markdown_format(self, capsys, tmp_path):
        out = _run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--format", "markdown",
        )
        assert "| location |" in out.splitlines()[2]

    def test_no_cache_writes_nothing(self, capsys, tmp_path):
        _run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--no-cache",
        )
        assert list(tmp_path.iterdir()) == []

    def test_unknown_scenario_exits_with_error(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["run", "not-a-scenario"])

    def test_bad_locations_exit_with_error(self):
        with pytest.raises(SystemExit, match="locations"):
            main(["run", "attack-success-shielded", "--locations", "1,x"])

    def test_out_of_range_location_exits_with_error(self):
        with pytest.raises(SystemExit, match="unknown testbed location"):
            main(["run", "attack-success-shielded", "--locations", "99"])

    def test_inapplicable_override_exits_with_error(self):
        with pytest.raises(SystemExit, match="do not apply"):
            main(["run", "mimo-eavesdropper", "--locations", "1"])

    def test_negative_workers_exit_with_error(self, tmp_path):
        with pytest.raises(SystemExit, match="workers"):
            main([
                "run", "attack-success-shielded",
                "--trials", "2", "--locations", "1",
                "--cache-dir", str(tmp_path), "--workers", "-1",
            ])

    def test_points_carry_integer_counts(self, capsys, tmp_path):
        payload = json.loads(_run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "3", "--locations", "1",
            "--cache-dir", str(tmp_path), "--format", "json",
        ))
        point = payload["points"][0]
        assert point["wins"] == 3
        assert point["alarms"] == 0


class TestStatus:
    def test_status_tracks_cache(self, capsys, tmp_path):
        argv = (
            "status", "attack-success-shielded",
            "--trials", "2", "--locations", "1,8",
            "--cache-dir", str(tmp_path), "--json",
        )
        before = json.loads(_run(capsys, *argv))
        assert before["cached_units"] == 0
        assert before["total_units"] == 2
        _run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1,8",
            "--cache-dir", str(tmp_path),
        )
        after = json.loads(_run(capsys, *argv))
        assert after["cached_units"] == 2


class TestCompare:
    def test_shielded_vs_unshielded(self, capsys, tmp_path):
        out = _run(
            capsys,
            "compare", "attack-success-unshielded", "attack-success-shielded",
            "--trials", "3", "--locations", "1,4",
            "--cache-dir", str(tmp_path), "--format", "json",
        )
        payload = json.loads(out)
        assert payload["value_key"] == "success_probability"
        # The paper's headline: the shield zeroes the attack everywhere,
        # and the bare IMD falls at close range.
        by_axis = {row["axis"]: row for row in payload["comparison"]}
        assert by_axis[1]["attack-success-unshielded"] == 1.0
        assert by_axis[1]["attack-success-shielded"] == 0.0
        assert by_axis[1]["delta"] == -1.0

    def test_mismatched_kinds_rejected(self):
        with pytest.raises(SystemExit, match="cannot compare"):
            main(["compare", "attack-success-shielded", "passive-ber-by-location"])


class TestAccelFlag:
    @pytest.fixture(autouse=True)
    def _reset_backend(self):
        from repro import accel

        yield
        accel.set_backend(None)

    def test_accel_numpy_runs(self, capsys, tmp_path):
        from repro import accel

        out = _run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1,8",
            "--cache-dir", str(tmp_path), "--accel", "numpy",
        )
        assert "units: 2 total" in out
        assert accel.resolve_backend() == "numpy"

    def test_accel_results_match_default(self, capsys, tmp_path):
        forced = json.loads(_run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "2", "--locations", "1,4",
            "--cache-dir", str(tmp_path / "forced"),
            "--accel", "numpy", "--format", "json",
        ))
        default = json.loads(_run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "2", "--locations", "1,4",
            "--cache-dir", str(tmp_path / "default"), "--format", "json",
        ))
        from repro import accel

        if accel.numba_available():
            # Tolerance-pinned: numba may reassociate float sums.
            for a, b in zip(forced["points"], default["points"]):
                assert abs(a["success_probability"]
                           - b["success_probability"]) < 1e-9
        else:
            assert forced["points"] == default["points"]

    def test_accel_numba_missing_is_a_clean_error(self, capsys):
        from repro import accel

        if accel.numba_available():
            pytest.skip("numba installed; missing-dependency leg n/a")
        assert main(["run", "attack-success-shielded", "--trials", "1",
                     "--accel", "numba", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "numba is not installed" in err

    def test_accel_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):  # argparse choices
            main(["run", "attack-success-shielded", "--accel", "cuda"])


class TestProfileFlag:
    def test_profile_writes_loadable_pstats(self, capsys, tmp_path):
        import pstats

        out = _run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1,8",
            "--cache-dir", str(tmp_path), "--profile",
        )
        profile_path = tmp_path / "profiles" / "attack-success-shielded.pstats"
        assert str(profile_path) in out
        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0

    def test_profile_with_everything_cached_reports_nothing_to_do(
        self, capsys, tmp_path
    ):
        argv = (
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1,8",
            "--cache-dir", str(tmp_path),
        )
        _run(capsys, *argv)
        out = _run(capsys, *argv, "--profile")
        assert "nothing to profile" in out

    def test_profile_does_not_change_results(self, capsys, tmp_path):
        profiled = json.loads(_run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "2", "--locations", "1,4",
            "--cache-dir", str(tmp_path / "p"), "--profile",
            "--format", "json",
        ))
        plain = json.loads(_run(
            capsys,
            "run", "attack-success-unshielded",
            "--trials", "2", "--locations", "1,4",
            "--cache-dir", str(tmp_path / "q"), "--format", "json",
        ))
        assert profiled["points"] == plain["points"]
