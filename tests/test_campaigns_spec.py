"""Tests for the scenario spec, content hashing, and the registry."""

import pytest

from repro.campaigns import registry
from repro.campaigns.spec import Scenario


def _attack(**changes) -> Scenario:
    base = dict(
        name="test-attack",
        kind="attack",
        attacker="fcc",
        command="therapy",
        shield_present=True,
        location_indices=(1, 2),
        n_trials=4,
    )
    base.update(changes)
    return Scenario(**base)


class TestValidation:
    def test_minimal_attack_scenario(self):
        assert _attack().kind == "attack"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(name="x-y", kind="quantum")

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError, match="name"):
            _attack(name="spaces are bad")
        with pytest.raises(ValueError, match="name"):
            _attack(name="")

    def test_rejects_unknown_attacker(self):
        with pytest.raises(ValueError, match="attacker"):
            _attack(attacker="ninja")

    def test_rejects_unknown_command(self):
        with pytest.raises(ValueError, match="command"):
            _attack(command="explode")

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            _attack(metric="vibes")

    def test_rejects_empty_locations(self):
        with pytest.raises(ValueError, match="location"):
            _attack(location_indices=())

    def test_rejects_duplicate_locations(self):
        with pytest.raises(ValueError, match="unique"):
            _attack(location_indices=(1, 1))

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ValueError, match="n_trials"):
            _attack(n_trials=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            _attack(chunk_size=0)

    def test_mimo_needs_separations(self):
        with pytest.raises(ValueError, match="separations"):
            Scenario(name="m-m", kind="mimo", separations_m=())

    def test_mimo_needs_two_antennas(self):
        with pytest.raises(ValueError, match="antennas"):
            Scenario(name="m-m", kind="mimo", separations_m=(0.1,), n_antennas=1)

    def test_rejects_locations_outside_the_testbed(self):
        with pytest.raises(ValueError, match="unknown testbed location"):
            _attack(location_indices=(1, 99))

    def test_normalises_sequence_types(self):
        scenario = _attack(location_indices=[3, 4])
        assert scenario.location_indices == (3, 4)


class TestContentHash:
    def test_stable_across_equal_instances(self):
        assert _attack().scenario_hash() == _attack().scenario_hash()

    def test_changes_with_execution_fields(self):
        base = _attack().scenario_hash()
        assert _attack(seed=1).scenario_hash() != base
        assert _attack(n_trials=5).scenario_hash() != base
        assert _attack(shield_present=False).scenario_hash() != base
        assert _attack(chunk_size=2).scenario_hash() != base

    def test_display_fields_are_not_identity(self):
        """Renaming or re-describing a scenario must keep its cache."""
        base = _attack().scenario_hash()
        assert _attack(name="other-name").scenario_hash() == base
        assert _attack(title="T", description="D").scenario_hash() == base
        assert _attack(tags=("x",)).scenario_hash() == base

    def test_kinds_never_collide(self):
        passive = Scenario(
            name="p-p", kind="passive_ber", location_indices=(1, 2), n_trials=4
        )
        assert passive.scenario_hash() != _attack().scenario_hash()


class TestOverride:
    def test_override_revalidates(self):
        with pytest.raises(ValueError, match="attacker"):
            _attack().override(attacker="ninja")

    def test_override_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            _attack().override(locations=(1,))

    def test_override_changes_hash(self):
        scenario = _attack()
        assert (
            scenario.override(n_trials=99).scenario_hash()
            != scenario.scenario_hash()
        )

    def test_override_rejects_inapplicable_fields(self):
        """Overriding a field the kind ignores must fail loudly, not
        silently run the unnarrowed grid."""
        mimo = Scenario(name="m-m", kind="mimo", separations_m=(0.1,))
        with pytest.raises(ValueError, match="do not apply"):
            mimo.override(location_indices=(1,))
        with pytest.raises(ValueError, match="do not apply"):
            _attack().override(separations_m=(0.1,))

    def test_override_display_fields_always_allowed(self):
        renamed = _attack().override(name="new-name", title="T", tags=("x",))
        assert renamed.scenario_hash() == _attack().scenario_hash()


class TestRegistry:
    EXPECTED = (
        "passive-ber-by-location",
        "attack-success-unshielded",
        "attack-success-shielded",
        "highpower-unshielded",
        "highpower-shielded",
        "battery-drain-unshielded",
        "battery-drain-shielded",
        "crypto-only-baseline",
        "mimo-eavesdropper",
    )

    def test_builtins_registered(self):
        names = registry.names()
        for name in self.EXPECTED:
            assert name in names

    def test_builtin_hashes_distinct(self):
        hashes = [s.scenario_hash() for s in registry.all_scenarios()]
        assert len(set(hashes)) == len(hashes)

    def test_get_unknown_names_the_known(self):
        with pytest.raises(KeyError, match="attack-success-shielded"):
            registry.get("no-such-scenario")

    def test_register_rejects_duplicates(self):
        scenario = registry.get("attack-success-shielded")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(scenario)

    def test_builtins_all_carry_expectations(self):
        for name in self.EXPECTED:
            assert registry.expectations_for(name), name

    def test_expectation_registration_validates_axes_and_metrics(self):
        from repro.stats import Expectation

        with pytest.raises(ValueError, match="does not sweep"):
            registry.register_expectations(
                "attack-success-shielded",
                Expectation(
                    metric="success_probability", kind="upper_bound",
                    value=0.05, axes=(99,),
                ),
                allow_replace=True,
            )
        with pytest.raises(ValueError, match="not measured"):
            registry.register_expectations(
                "attack-success-shielded",
                Expectation(metric="ber", kind="upper_bound", value=0.05),
                allow_replace=True,
            )

    def test_replacing_a_scenario_drops_its_expectations(self):
        """Expectations are validated against the grid they were
        registered for; a replaced scenario must not silently carry a
        stale table whose axes may no longer exist."""
        from repro.stats import Expectation

        name = "test-replace-drops"
        try:
            registry.register(Scenario(
                name=name, kind="attack", location_indices=tuple(range(1, 15)),
            ))
            registry.register_expectations(
                name,
                Expectation(
                    metric="success_probability", kind="upper_bound",
                    value=0.5, axes=(10, 14),
                ),
            )
            assert registry.expectations_for(name)
            registry.register(
                Scenario(name=name, kind="attack", location_indices=(1, 2)),
                allow_replace=True,
            )
            assert registry.expectations_for(name) == ()
        finally:
            registry._REGISTRY.pop(name, None)
            registry._EXPECTATIONS.pop(name, None)

    def test_shielded_unshielded_share_the_axis(self):
        """The headline compare: same grid, one flag apart."""
        on = registry.get("attack-success-shielded")
        off = registry.get("attack-success-unshielded")
        assert on.location_indices == off.location_indices
        assert on.n_trials == off.n_trials
        assert on.seed == off.seed
