"""Tests for the crypto substrate: KDF, stream, AEAD, channel, pairing."""

import numpy as np
import pytest

from repro.crypto.aead import AEAD, AuthenticationError
from repro.crypto.kdf import hkdf_sha256
from repro.crypto.pairing import OutOfBandPairing
from repro.crypto.secure_channel import ReplayError, SecureChannel
from repro.crypto.stream import keystream, xor_stream


class TestHKDF:
    def test_deterministic(self):
        a = hkdf_sha256(b"secret", 32, info=b"x")
        b = hkdf_sha256(b"secret", 32, info=b"x")
        assert a == b

    def test_info_separates_keys(self):
        a = hkdf_sha256(b"secret", 32, info=b"enc")
        b = hkdf_sha256(b"secret", 32, info=b"auth")
        assert a != b

    def test_salt_separates_keys(self):
        a = hkdf_sha256(b"secret", 32, salt=b"1")
        b = hkdf_sha256(b"secret", 32, salt=b"2")
        assert a != b

    def test_rfc5869_case_1(self):
        """RFC 5869 test vector A.1."""
        okm = hkdf_sha256(
            bytes.fromhex("0b" * 22),
            42,
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_length_range(self):
        with pytest.raises(ValueError):
            hkdf_sha256(b"k", 0)
        assert len(hkdf_sha256(b"k", 100)) == 100


class TestStream:
    def test_xor_is_involution(self):
        data = b"private ECG telemetry"
        once = xor_stream(data, b"key", b"nonce")
        assert xor_stream(once, b"key", b"nonce") == data

    def test_different_nonces_differ(self):
        a = keystream(b"key", b"n1", 64)
        b = keystream(b"key", b"n2", 64)
        assert a != b

    def test_keystream_extension_consistent(self):
        short = keystream(b"key", b"n", 10)
        long = keystream(b"key", b"n", 100)
        assert long[:10] == short

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            keystream(b"", b"n", 8)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            keystream(b"k", b"n", -1)


class TestAEAD:
    @pytest.fixture
    def aead(self):
        keys = hkdf_sha256(b"root", 64)
        return AEAD(keys[:32], keys[32:])

    def test_round_trip(self, aead):
        sealed = aead.seal(b"nonce---", b"interrogate", b"ad")
        assert aead.open(b"nonce---", sealed, b"ad") == b"interrogate"

    def test_tamper_detected(self, aead):
        sealed = bytearray(aead.seal(b"nonce---", b"set therapy"))
        sealed[2] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.open(b"nonce---", bytes(sealed))

    def test_tag_tamper_detected(self, aead):
        sealed = bytearray(aead.seal(b"nonce---", b"x"))
        sealed[-1] ^= 0x80
        with pytest.raises(AuthenticationError):
            aead.open(b"nonce---", bytes(sealed))

    def test_wrong_ad_detected(self, aead):
        sealed = aead.seal(b"nonce---", b"x", b"ad-one")
        with pytest.raises(AuthenticationError):
            aead.open(b"nonce---", sealed, b"ad-two")

    def test_wrong_nonce_detected(self, aead):
        sealed = aead.seal(b"nonce--1", b"x")
        with pytest.raises(AuthenticationError):
            aead.open(b"nonce--2", sealed)

    def test_short_message_rejected(self, aead):
        with pytest.raises(AuthenticationError):
            aead.open(b"nonce---", b"tiny")

    def test_key_validation(self):
        with pytest.raises(ValueError):
            AEAD(b"short", b"also-short")
        with pytest.raises(ValueError):
            AEAD(b"k" * 32, b"k" * 32)  # identical keys


class TestSecureChannel:
    @pytest.fixture
    def pair(self):
        secret = hkdf_sha256(b"pairing", 32)
        return SecureChannel(secret, is_shield=True), SecureChannel(
            secret, is_shield=False
        )

    def test_bidirectional_round_trip(self, pair):
        shield, programmer = pair
        assert programmer.receive(shield.send(b"telemetry")) == b"telemetry"
        assert shield.receive(programmer.send(b"command")) == b"command"

    def test_replay_rejected(self, pair):
        shield, programmer = pair
        wire = programmer.send(b"set therapy")
        shield.receive(wire)
        with pytest.raises(ReplayError):
            shield.receive(wire)

    def test_tampered_wire_rejected(self, pair):
        shield, programmer = pair
        wire = bytearray(programmer.send(b"command"))
        wire[10] ^= 1
        with pytest.raises(AuthenticationError):
            shield.receive(bytes(wire))

    def test_direction_keys_differ(self, pair):
        """A shield->programmer message must not open as
        programmer->shield (reflection attack)."""
        shield, programmer = pair
        wire = shield.send(b"hello")
        with pytest.raises(AuthenticationError):
            shield.receive(wire)

    def test_out_of_order_within_window_ok(self, pair):
        shield, programmer = pair
        w1 = programmer.send(b"one")
        w2 = programmer.send(b"two")
        assert shield.receive(w2) == b"two"
        assert shield.receive(w1) == b"one"

    def test_stale_beyond_window_rejected(self):
        secret = hkdf_sha256(b"pairing", 32)
        shield = SecureChannel(secret, is_shield=True, replay_window=4)
        programmer = SecureChannel(secret, is_shield=False, replay_window=4)
        wires = [programmer.send(bytes([i])) for i in range(10)]
        shield.receive(wires[9])
        with pytest.raises(ReplayError):
            shield.receive(wires[0])

    def test_forgery_does_not_burn_sequence(self, pair):
        """A forged packet with a future sequence must not block the
        legitimate one."""
        shield, programmer = pair
        real = programmer.send(b"real")
        forged = real[:8] + bytes(len(real) - 8)
        with pytest.raises(AuthenticationError):
            shield.receive(forged)
        assert shield.receive(real) == b"real"

    def test_short_wire_rejected(self, pair):
        shield, _ = pair
        with pytest.raises(AuthenticationError):
            shield.receive(b"abc")

    def test_weak_secret_rejected(self):
        with pytest.raises(ValueError):
            SecureChannel(b"short", is_shield=True)


class TestPairing:
    def test_same_code_same_secret(self):
        pairing = OutOfBandPairing(b"shield-01")
        assert pairing.derive_secret("123456") == pairing.derive_secret("123456")

    def test_wrong_code_different_secret(self):
        pairing = OutOfBandPairing(b"shield-01")
        assert pairing.derive_secret("123456") != pairing.derive_secret("123457")

    def test_shield_identity_salts_secret(self):
        a = OutOfBandPairing(b"shield-01").derive_secret("123456")
        b = OutOfBandPairing(b"shield-02").derive_secret("123456")
        assert a != b

    def test_generate_code_format(self, rng):
        code = OutOfBandPairing(b"s").generate_code(rng)
        assert len(code) == 6 and code.isdigit()

    def test_bad_code_rejected(self):
        pairing = OutOfBandPairing(b"s")
        with pytest.raises(ValueError):
            pairing.derive_secret("12345")
        with pytest.raises(ValueError):
            pairing.derive_secret("abcdef")

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfBandPairing(b"")
        with pytest.raises(ValueError):
            OutOfBandPairing(b"s", code_digits=2)

    def test_end_to_end_with_channel(self, rng):
        """Pairing -> secret -> working secure channel."""
        pairing = OutOfBandPairing(b"shield-xyz")
        code = pairing.generate_code(rng)
        shield = SecureChannel(pairing.derive_secret(code), is_shield=True)
        programmer = SecureChannel(pairing.derive_secret(code), is_shield=False)
        assert shield.receive(programmer.send(b"hello")) == b"hello"

    def test_mismatched_codes_cannot_talk(self):
        pairing = OutOfBandPairing(b"shield-xyz")
        shield = SecureChannel(pairing.derive_secret("111111"), is_shield=True)
        imposter = SecureChannel(pairing.derive_secret("222222"), is_shield=False)
        with pytest.raises(AuthenticationError):
            shield.receive(imposter.send(b"evil"))
