"""Tests for the active detector, the encrypted relay, and energy."""

import numpy as np
import pytest

from repro.core.detector import ActiveDetector
from repro.core.energy import EnergyBudget, ShieldEnergyMeter
from repro.core.relay import (
    ProgrammerLink,
    ShieldRelay,
    packet_to_wire,
    wire_to_packet,
)
from repro.crypto.secure_channel import ReplayError
from repro.protocol.commands import CommandType
from repro.protocol.packets import Packet, PacketCodec


@pytest.fixture
def detector(codec, serial) -> ActiveDetector:
    return ActiveDetector(
        codec.identifying_sequence(serial),
        b_thresh=4,
        p_thresh_dbm=-17.0,
        anomaly_rssi_dbm=-38.0,
    )


class TestActiveDetector:
    def test_matches_clean_prefix(self, detector, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))
        decision = detector.evaluate(bits[:104], rssi_dbm=-60.0)
        assert decision.matched and decision.should_jam
        assert decision.distance == 0

    def test_tolerates_b_thresh_flips(self, detector, codec, serial, rng):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))[:104]
        flip = rng.choice(104, size=4, replace=False)
        bits[flip] ^= 1
        assert detector.evaluate(bits, -60.0).matched

    def test_rejects_past_b_thresh(self, detector, codec, serial, rng):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))[:104]
        flip = rng.choice(104, size=5, replace=False)
        bits[flip] ^= 1
        assert not detector.evaluate(bits, -60.0).matched

    def test_foreign_traffic_not_matched(self, detector, rng):
        assert not detector.evaluate(rng.integers(0, 2, size=104), -60.0).matched

    def test_short_burst_not_matched(self, detector, rng):
        decision = detector.evaluate(rng.integers(0, 2, size=50), -10.0)
        assert not decision.matched
        assert not decision.should_alarm  # unmatched power is not an alarm

    def test_alarm_requires_match_and_power(self, detector, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))[:104]
        quiet = detector.evaluate(bits, rssi_dbm=-60.0)
        strong = detector.evaluate(bits, rssi_dbm=-10.0)
        assert not quiet.should_alarm
        assert strong.should_alarm and strong.exceeds_p_thresh

    def test_anomaly_flag(self, detector, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))[:104]
        decision = detector.evaluate(bits, rssi_dbm=-30.0)
        assert decision.anomalous_power
        assert not decision.exceeds_p_thresh
        assert decision.should_alarm

    def test_window_bits(self, detector):
        assert detector.window_bits == 104

    def test_unreasonable_b_thresh_rejected(self, codec, serial):
        with pytest.raises(ValueError):
            ActiveDetector(
                codec.identifying_sequence(serial),
                b_thresh=50,
                p_thresh_dbm=-17.0,
                anomaly_rssi_dbm=-38.0,
            )


class TestRelay:
    @pytest.fixture
    def endpoints(self, codec):
        secret = bytes(32)
        return ShieldRelay(secret, codec), ProgrammerLink(secret, codec)

    def test_command_relay_round_trip(self, endpoints, serial):
        shield, programmer = endpoints
        packet = Packet(serial, CommandType.INTERROGATE, 9, b"abcd")
        wire = programmer.seal_command(packet)
        assert shield.open_command(wire) == packet
        assert shield.relayed_commands == 1

    def test_reply_relay_round_trip(self, endpoints, serial):
        shield, programmer = endpoints
        reply = Packet(serial, CommandType.TELEMETRY, 3, b"ecg-data")
        assert programmer.open_reply(shield.seal_reply(reply)) == reply

    def test_network_replay_rejected(self, endpoints, serial):
        shield, programmer = endpoints
        wire = programmer.seal_command(Packet(serial, CommandType.INTERROGATE, 1))
        shield.open_command(wire)
        with pytest.raises(ReplayError):
            shield.open_command(wire)

    def test_seal_reply_bits_clean(self, endpoints, serial, codec):
        shield, programmer = endpoints
        reply = Packet(serial, CommandType.TELEMETRY, 5, b"xy")
        wire = shield.seal_reply_bits(codec.encode(reply))
        assert wire is not None
        assert programmer.open_reply(wire) == reply

    def test_seal_reply_bits_jammed_returns_none(self, endpoints, serial, codec):
        """Fig. 10's loss path: bits that fail the CRC are not relayed."""
        shield, _ = endpoints
        bits = codec.encode(Packet(serial, CommandType.TELEMETRY, 5, b"xy"))
        bits[120] ^= 1
        assert shield.seal_reply_bits(bits) is None

    def test_wire_serialisation_round_trip(self, codec, serial):
        packet = Packet(serial, CommandType.SET_THERAPY, 77, b"123456")
        assert wire_to_packet(packet_to_wire(packet, codec), codec) == packet


class TestEnergy:
    def test_battery_life_exceeds_24h_continuous_jamming(self):
        """S7(e): 'it can last for a day or longer even if transmitting
        continuously', like the 24-48 h wearable monitors it cites."""
        meter = ShieldEnergyMeter()
        assert meter.battery_life_hours(duty_cycle_tx=1.0) >= 24.0
        assert meter.battery_life_hours(duty_cycle_tx=1.0) <= 48.0

    def test_idle_life_much_longer(self):
        meter = ShieldEnergyMeter()
        assert meter.battery_life_hours(0.0) > 1.5 * meter.battery_life_hours(1.0)

    def test_energy_accumulates(self):
        meter = ShieldEnergyMeter()
        meter.record_transmission(10.0)
        meter.record_monitoring(100.0)
        assert meter.energy_spent_j > 0
        assert meter.tx_seconds == 10.0

    def test_validation(self):
        meter = ShieldEnergyMeter()
        with pytest.raises(ValueError):
            meter.record_transmission(-1.0)
        with pytest.raises(ValueError):
            meter.battery_life_hours(2.0)
        with pytest.raises(ValueError):
            EnergyBudget(battery_j=0)
