"""Cohort determinism: patient *i* is a pure function of (seed, *i*).

The fleet subsystem's load-bearing guarantee mirrors the
``round_seed_sequence`` contract: shard layout, worker count, and
iteration order must never touch a patient's profile or encounter
stream.  The hypothesis tests here pin that across arbitrary shard
splits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.cohort import (
    FLEET_SPAWN_NAMESPACE,
    CohortSpec,
    cohort_from_scenario,
)
from repro.physio.ecg import RHYTHM_CLASSES


def _spec(**changes) -> CohortSpec:
    base = dict(n_patients=40, seed=11)
    base.update(changes)
    return CohortSpec(**base)


class TestValidation:
    def test_rejects_bad_prevalence_length(self):
        with pytest.raises(ValueError, match="one weight per rhythm class"):
            _spec(rhythm_prevalence=(0.5, 0.5))

    def test_rejects_prevalence_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            _spec(rhythm_prevalence=(0.5, 0.2, 0.2, 0.2))

    def test_rejects_negative_prevalence(self):
        with pytest.raises(ValueError, match="negative"):
            _spec(rhythm_prevalence=(1.2, -0.2, 0.0, 0.0))

    def test_rejects_mismatched_location_weights(self):
        with pytest.raises(ValueError, match="one weight per location"):
            _spec(location_indices=(1, 2, 3), location_weights=(1.0, 2.0))

    def test_rejects_worn_fraction_outside_unit_interval(self):
        with pytest.raises(ValueError, match="shield_worn_fraction"):
            _spec(shield_worn_fraction=1.5)

    def test_rejects_nonpositive_patients(self):
        with pytest.raises(ValueError, match="n_patients"):
            _spec(n_patients=0)

    def test_rejects_negative_spread(self):
        with pytest.raises(ValueError, match="jam_margin_std_db"):
            _spec(jam_margin_std_db=-1.0)

    def test_patient_index_bounds_checked(self):
        spec = _spec(n_patients=5)
        with pytest.raises(ValueError, match="patient index"):
            spec.patient_profile(5)
        with pytest.raises(ValueError, match="patient index"):
            spec.encounter_seed(-1)


class TestContentHash:
    def test_hash_stable_across_instances(self):
        assert _spec().cohort_hash() == _spec().cohort_hash()

    def test_hash_changes_with_any_axis(self):
        base = _spec().cohort_hash()
        assert _spec(seed=12).cohort_hash() != base
        assert _spec(shield_worn_fraction=0.8).cohort_hash() != base
        assert _spec(jam_margin_std_db=0.0).cohort_hash() != base

    def test_payload_is_json_safe(self):
        import json

        json.dumps(_spec().payload())


class TestProfileSampling:
    def test_profiles_are_reproducible(self):
        a = [_spec().patient_profile(i) for i in range(10)]
        b = [_spec().patient_profile(i) for i in range(10)]
        assert a == b

    def test_rhythms_follow_prevalence(self):
        spec = _spec(
            n_patients=400, rhythm_prevalence=(0.0, 0.0, 0.0, 1.0)
        )
        assert all(p.rhythm == "afib" for p in spec.profiles())

    def test_worn_fraction_extremes(self):
        all_on = _spec(n_patients=50, shield_worn_fraction=1.0)
        all_off = _spec(n_patients=50, shield_worn_fraction=0.0)
        assert all(p.shield_worn for p in all_on.profiles())
        assert not any(p.shield_worn for p in all_off.profiles())

    def test_location_weights_concentrate_encounters(self):
        spec = _spec(
            n_patients=60,
            location_indices=(1, 12),
            location_weights=(0.0, 1.0),
        )
        assert all(p.location_index == 12 for p in spec.profiles())

    def test_zero_spread_pins_calibration(self):
        spec = _spec(
            jam_margin_std_db=0.0,
            p_thresh_std_db=0.0,
            cancellation_std_db=0.0,
        )
        for profile in spec.profiles(0, 10):
            assert profile.jam_margin_db == spec.jam_margin_mean_db
            assert profile.p_thresh_offset_db == 0.0
            assert profile.cancellation_offset_db == 0.0

    def test_jam_margin_never_below_floor(self):
        spec = _spec(jam_margin_mean_db=3.0, jam_margin_std_db=10.0)
        assert all(
            p.jam_margin_db >= 3.0 for p in spec.profiles(0, 40)
        )

    def test_profiles_vary_across_patients(self):
        rhythms = {p.rhythm for p in _spec(n_patients=200).profiles()}
        assert rhythms == set(RHYTHM_CLASSES)

    def test_encounter_stream_independent_of_profile_stream(self):
        """The two per-patient streams use distinct spawn-key words."""
        spec = _spec()
        profile_key = (FLEET_SPAWN_NAMESPACE, 3, 0)
        encounter = spec.encounter_seed(3)
        assert tuple(encounter.spawn_key) == (FLEET_SPAWN_NAMESPACE, 3, 1)
        assert tuple(encounter.spawn_key) != profile_key

    def test_encounter_seeds_draw_distinct_streams(self):
        spec = _spec()
        a = np.random.default_rng(spec.encounter_seed(0)).random(8)
        b = np.random.default_rng(spec.encounter_seed(1)).random(8)
        assert not np.allclose(a, b)


@pytest.mark.statistical
class TestShardInvariance:
    """Patient *i* is bit-identical across any shard layout."""

    @given(
        n_patients=st.integers(min_value=1, max_value=60),
        shard=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_profiles_identical_across_shard_counts(
        self, n_patients, shard, seed
    ):
        spec = CohortSpec(n_patients=n_patients, seed=seed)
        serial = list(spec.profiles())
        sharded = []
        start = 0
        while start < n_patients:
            count = min(shard, n_patients - start)
            sharded.extend(spec.profiles(start, count))
            start += count
        assert sharded == serial

    @given(
        index=st.integers(min_value=0, max_value=39),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_encounter_streams_shard_invariant(self, index, seed):
        """The encounter stream depends only on (seed, patient index)."""
        small = CohortSpec(n_patients=40, seed=seed)
        large = CohortSpec(n_patients=4000, seed=seed)
        draw_a = np.random.default_rng(small.encounter_seed(index)).random(4)
        draw_b = np.random.default_rng(large.encounter_seed(index)).random(4)
        assert np.array_equal(draw_a, draw_b)


class TestScenarioMapping:
    def test_cohort_from_scenario_round_trips_the_axes(self):
        from repro.campaigns.spec import Scenario

        scenario = Scenario(
            name="fleet-map-test",
            kind="fleet",
            n_patients=33,
            seed=9,
            shield_worn_fraction=0.5,
            location_indices=(1, 5, 9),
            location_weights=(1.0, 2.0, 3.0),
            jam_margin_std_db=0.5,
        )
        cohort = cohort_from_scenario(scenario)
        assert cohort.n_patients == 33
        assert cohort.seed == 9
        assert cohort.shield_worn_fraction == 0.5
        assert cohort.location_indices == (1, 5, 9)
        assert cohort.location_weights == (1.0, 2.0, 3.0)

    def test_rejects_non_fleet_scenarios(self):
        from repro.campaigns import registry

        with pytest.raises(ValueError, match="not 'fleet'"):
            cohort_from_scenario(registry.get("attack-success-shielded"))
