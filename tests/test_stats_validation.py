"""Tests for the golden-figure validation harness and the validate CLI verb."""

import json
import re

import pytest

from repro.campaigns import CampaignRunner, registry
from repro.campaigns.cli import main
from repro.stats import (
    Expectation,
    ValidationReport,
    cells_from_result,
    validate_scenario,
)


def _run(capsys, *argv, expect: int = 0) -> str:
    assert main(list(argv)) == expect
    return capsys.readouterr().out


class TestCellsFromResult:
    def test_attack_counts_round_trip(self):
        scenario = registry.get("attack-success-shielded").override(
            location_indices=(1, 8), n_trials=4
        )
        result = CampaignRunner(scenario, persist=False).run()
        cells = cells_from_result(result)
        assert [c.axis for c in cells] == [1, 8]
        for cell, point in zip(cells, result.points):
            est = cell.estimators["success_probability"]
            assert est.successes == point["wins"]
            assert est.trials == point["n_trials"]
            assert cell.estimators["alarm_probability"].successes == point["alarms"]

    def test_passive_moments_round_trip(self):
        scenario = registry.get("passive-ber-by-location").override(
            location_indices=(1,), n_trials=5
        )
        result = CampaignRunner(scenario, persist=False).run()
        (cell,) = cells_from_result(result)
        est = cell.estimators["ber"]
        assert est.count == 5
        assert est.estimate == pytest.approx(result.points[0]["ber"], rel=1e-12)
        # Moments give a real interval, not a degenerate point.
        low, high = est.interval()
        assert low < est.estimate < high


class TestValidateScenario:
    def test_requires_expectations(self):
        scenario = registry.get("attack-success-shielded")
        with pytest.raises(ValueError, match="no registered expectations"):
            validate_scenario(scenario, (), persist=False)

    def test_registry_paper_scenarios_pass_fixed(self):
        for name in ("passive-ber-by-location", "attack-success-shielded"):
            scenario = registry.get(name)
            validation = validate_scenario(
                scenario, registry.expectations_for(name), persist=False
            )
            assert validation.verdict == "pass", name
            assert validation.trials_used == validation.fixed_trials

    def test_acceptance_adaptive_same_verdicts_half_the_trials(self):
        """The ISSUE's acceptance criterion, as a regression test: the
        adaptive run reaches the fixed run's verdicts on the two headline
        scenarios with at most half the trials."""
        for name in ("passive-ber-by-location", "attack-success-shielded"):
            scenario = registry.get(name)
            expectations = registry.expectations_for(name)
            fixed = validate_scenario(scenario, expectations, persist=False)
            adaptive = validate_scenario(
                scenario, expectations, adaptive=True, persist=False
            )
            assert adaptive.converged
            assert [o.verdict for o in adaptive.outcomes] == [
                o.verdict for o in fixed.outcomes
            ]
            assert adaptive.trials_used <= fixed.trials_used // 2, name

    def test_confidence_override_reaches_verdict_intervals(self):
        """--confidence must change the reported intervals, not just
        adaptive stopping (regression: it used to be a no-op in fixed
        mode)."""
        scenario = registry.get("attack-success-shielded").override(
            location_indices=(1,), n_trials=6
        )
        expectations = registry.expectations_for("attack-success-shielded")
        narrow = validate_scenario(
            scenario, expectations, persist=False, confidence=0.80
        )
        wide = validate_scenario(
            scenario, expectations, persist=False, confidence=0.999
        )
        cell_n = narrow.outcomes[0].cells[0]
        cell_w = wide.outcomes[0].cells[0]
        assert cell_w.high > cell_n.high

    def test_fabricated_claim_fails(self):
        scenario = registry.get("attack-success-unshielded").override(
            location_indices=(1,), n_trials=6
        )
        bad = Expectation(
            metric="success_probability", kind="upper_bound", value=0.05,
            note="the bare IMD is safe up close (it is not)",
        )
        validation = validate_scenario(scenario, (bad,), persist=False)
        assert validation.verdict == "fail"

    def test_warm_cache_validation_is_pure_statistics(self, tmp_path):
        scenario = registry.get("attack-success-shielded").override(
            location_indices=(1, 8), n_trials=4
        )
        expectations = registry.expectations_for("attack-success-shielded")
        first = validate_scenario(scenario, expectations, cache_dir=tmp_path)
        assert first.computed_units > 0
        second = validate_scenario(scenario, expectations, cache_dir=tmp_path)
        assert second.computed_units == 0
        assert second.cached_units == first.computed_units
        assert [o.verdict for o in second.outcomes] == [
            o.verdict for o in first.outcomes
        ]


class TestValidationReport:
    def test_strictness_gates_inconclusive(self):
        scenario = registry.get("attack-success-unshielded").override(
            location_indices=(8,), n_trials=4
        )
        # Location 8 sits mid-transition (~0.7 success): a tight upper
        # bound at tiny n is inconclusive, not failed.
        wobbly = Expectation(
            metric="success_probability", kind="upper_bound", value=0.6
        )
        validation = validate_scenario(scenario, (wobbly,), persist=False)
        assert validation.verdict == "inconclusive"
        assert ValidationReport([validation], strict=False).passed
        assert not ValidationReport([validation], strict=True).passed

    def test_payload_is_strict_json_even_with_unjudgeable_cells(self):
        """A single-sample mean cell has no CI; its payload must carry
        null, never a bare NaN token that breaks strict JSON parsers."""
        scenario = registry.get("passive-ber-by-location").override(
            location_indices=(1,), n_trials=1
        )
        expectations = registry.expectations_for("passive-ber-by-location")
        validation = validate_scenario(scenario, expectations, persist=False)
        assert validation.verdict == "inconclusive"
        payload = ValidationReport([validation]).to_payload()
        text = json.dumps(payload, allow_nan=False)  # raises on NaN/inf
        cell = payload["scenarios"][0]["expectations"][0]["cells"][0]
        assert cell["low"] is None and cell["high"] is None
        assert "NaN" not in text

    def test_payload_shape(self):
        scenario = registry.get("mimo-eavesdropper")
        validation = validate_scenario(
            scenario, registry.expectations_for("mimo-eavesdropper"), persist=False
        )
        payload = ValidationReport([validation]).to_payload()
        assert payload["verdict"] == "pass"
        (entry,) = payload["scenarios"]
        assert entry["scenario"] == "mimo-eavesdropper"
        assert {"metric", "kind", "verdict", "cells"} <= set(
            entry["expectations"][0]
        )


class TestValidateCli:
    def test_validate_named_scenarios_exit_zero(self, capsys, tmp_path):
        out = _run(
            capsys,
            "validate", "attack-success-shielded",
            "--budget", "smoke", "--cache-dir", str(tmp_path),
        )
        assert "attack-success-shielded" in out
        assert "PASS" in out

    def test_validate_json_payload(self, capsys, tmp_path):
        out = _run(
            capsys,
            "validate", "attack-success-shielded", "--budget", "smoke",
            "--cache-dir", str(tmp_path), "--format", "json",
        )
        payload = json.loads(out)
        assert payload["passed"] is True
        assert payload["scenarios"][0]["verdict"] == "pass"

    def test_validate_adaptive_reports_savings(self, capsys, tmp_path):
        out = _run(
            capsys,
            "validate", "attack-success-shielded", "--adaptive",
            "--budget", "smoke", "--cache-dir", str(tmp_path),
        )
        assert "fixed budget would be" in out

    def test_validate_unknown_scenario_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "no-such-scenario"])

    def test_validate_rejects_bad_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["validate", "attack-success-shielded", "--round-size", "1"])

    def test_validate_smoke_all_scenarios(self, capsys, tmp_path):
        """The CI smoke gate: no registered expectation is *refuted* at
        the smoke budget.

        The physio-leakage-shielded versus-chance claim is a two-sided
        ci_overlap check; four smoke trials cannot localize it, so that
        one scenario legitimately judges inconclusive (never FAIL) and
        the gate still exits 0.  Every other scenario must still judge
        PASS outright, so a regression from confirmed to inconclusive
        anywhere else turns the gate red.
        """
        out = _run(
            capsys, "validate", "--budget", "smoke", "--cache-dir", str(tmp_path)
        )
        assert "validate: FAIL" not in out
        verdicts = dict(
            re.findall(r"^== (\S+) \[fixed\] -- (\w+) ==$", out, re.MULTILINE)
        )
        assert len(verdicts) == 15
        assert verdicts.pop("physio-leakage-shielded") in {"PASS", "INCONCLUSIVE"}
        not_passing = {k: v for k, v in verdicts.items() if v != "PASS"}
        assert not not_passing, not_passing
