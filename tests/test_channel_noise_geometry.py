"""Tests for noise floors and the Fig. 6 testbed geometry."""

import pytest

from repro.channel.geometry import (
    AdversaryLocation,
    Position,
    TestbedGeometry,
    default_testbed,
)
from repro.channel.noise import (
    IMD_NOISE_FIGURE_DB,
    MICS_CHANNEL_BANDWIDTH_HZ,
    thermal_noise_dbm,
)


class TestNoise:
    def test_ktb_over_300khz(self):
        # kTB at 290 K over 300 kHz: -174 dBm/Hz + 10 log10(3e5) ~ -119.2 dBm.
        assert thermal_noise_dbm() == pytest.approx(-119.2, abs=0.2)

    def test_noise_figure_adds(self):
        base = thermal_noise_dbm()
        assert thermal_noise_dbm(noise_figure_db=7.0) == pytest.approx(base + 7.0)

    def test_bandwidth_scaling(self):
        narrow = thermal_noise_dbm(bandwidth_hz=MICS_CHANNEL_BANDWIDTH_HZ / 10)
        assert thermal_noise_dbm() - narrow == pytest.approx(10.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(bandwidth_hz=0)
        with pytest.raises(ValueError):
            thermal_noise_dbm(noise_figure_db=-1)
        with pytest.raises(ValueError):
            thermal_noise_dbm(temperature_k=0)

    def test_imd_receiver_noisier_than_sdr(self):
        assert IMD_NOISE_FIGURE_DB > 7.0


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)


class TestAdversaryLocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdversaryLocation(0, 1.0, True)
        with pytest.raises(ValueError):
            AdversaryLocation(1, -1.0, True)
        with pytest.raises(ValueError):
            AdversaryLocation(1, 1.0, False, -2.0)

    def test_los_cannot_carry_obstruction(self):
        with pytest.raises(ValueError):
            AdversaryLocation(1, 1.0, True, 10.0)

    def test_position_distance_consistent(self):
        loc = AdversaryLocation(3, 7.5, True)
        origin = Position(0.0, 0.0)
        assert loc.position().distance_to(origin) == pytest.approx(7.5)


class TestTestbedGeometry:
    def test_eighteen_locations(self):
        assert len(default_testbed().locations) == 18

    def test_rssi_ordering_matches_numbering(self):
        """Fig. 6: locations are 'numbered in descending order of
        received signal strength at the shield'."""
        assert default_testbed().rssi_ordering_is_descending()

    def test_location_1_at_20cm(self):
        """The paper's closest adversary is 20 cm away."""
        assert default_testbed().location(1).distance_m == pytest.approx(0.2)

    def test_location_8_near_14m(self):
        """Fig. 11: FCC-power attacks succeed 'up to 14 meters away
        (location 8)'."""
        assert default_testbed().location(8).distance_m == pytest.approx(14.0)

    def test_location_13_near_27m(self):
        """Fig. 13: high-power attacks reach 'as far as 27 meters
        (location 13)'."""
        assert default_testbed().location(13).distance_m == pytest.approx(27.0)

    def test_span_20cm_to_30m(self):
        """S9: 'We varied the adversary's location between 20 cm and 30 m'."""
        distances = [loc.distance_m for loc in default_testbed().locations]
        assert min(distances) == pytest.approx(0.2)
        assert max(distances) == pytest.approx(30.0)

    def test_mixes_los_and_nlos(self):
        flags = {loc.line_of_sight for loc in default_testbed().locations}
        assert flags == {True, False}

    def test_lookup_unknown_location(self):
        with pytest.raises(KeyError):
            default_testbed().location(99)

    def test_shield_closer_than_any_adversary(self):
        """Threat model (S3.2): every adversary is farther from the IMD
        than the shield."""
        g = default_testbed()
        assert all(
            loc.distance_m > g.shield_to_imd_m for loc in g.locations
        )

    def test_antenna_separation_well_under_half_wavelength(self):
        """The design claim: antennas sit next to each other, far below
        the 37.5 cm half-wavelength prior work required."""
        g = default_testbed()
        assert g.antenna_separation_m < 0.375 / 2

    def test_duplicate_indices_rejected(self):
        loc = AdversaryLocation(1, 1.0, True)
        with pytest.raises(ValueError):
            TestbedGeometry(locations=(loc, loc))

    def test_validation(self):
        with pytest.raises(ValueError):
            TestbedGeometry(shield_to_imd_m=0.0)
        with pytest.raises(ValueError):
            TestbedGeometry(antenna_separation_m=-1.0)
