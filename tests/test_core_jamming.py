"""Tests for shaped jamming-signal generation (S6(a), Fig. 5)."""

import numpy as np
import pytest

from repro.core.jamming import ShapedJammer
from repro.phy.spectrum import FrequencyProfile, band_power_fraction


class TestShapedJammer:
    def test_power_budget_respected(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        jam = jammer.generate(4096, power=0.01)
        assert jam.power() == pytest.approx(0.01)

    def test_jam_is_random_never_repeats(self, rng):
        """S6: the jam acts as a one-time pad; two generations must be
        uncorrelated."""
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        a = jammer.generate(4096)
        b = jammer.generate(4096)
        corr = np.abs(np.vdot(a.samples, b.samples)) / (
            np.linalg.norm(a.samples) * np.linalg.norm(b.samples)
        )
        assert corr < 0.1

    def test_shaped_energy_sits_on_fsk_tones(self, rng):
        """Fig. 5: the shaped jam concentrates power where the FSK
        receiver listens."""
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        jam = jammer.generate(16384)
        tone_band = band_power_fraction(jam, 20e3, 80e3) + band_power_fraction(
            jam, -80e3, -20e3
        )
        assert tone_band > 0.5

    def test_flat_jammer_spreads_energy(self, rng):
        jammer = ShapedJammer.flat(300e3, 600e3, rng=rng)
        jam = jammer.generate(16384)
        tone_band = band_power_fraction(jam, 20e3, 80e3) + band_power_fraction(
            jam, -80e3, -20e3
        )
        # Two 60 kHz windows out of 300 kHz: ~40% of a flat spectrum.
        assert tone_band < 0.55

    def test_shaped_beats_flat_in_band(self, rng):
        """The Fig. 5 comparison, quantified: shaped jamming puts more
        power into the +/-50 kHz tone neighbourhoods at equal budget."""
        shaped = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng).generate(
            16384, power=1.0
        )
        flat = ShapedJammer.flat(300e3, 600e3, rng=rng).generate(16384, power=1.0)

        def tones(w):
            return band_power_fraction(w, 30e3, 70e3) + band_power_fraction(
                w, -70e3, -30e3
            )

        assert tones(shaped) > 1.3 * tones(flat)

    def test_custom_profile_followed(self, rng):
        """The generator must follow an arbitrary measured profile."""
        freqs = np.linspace(-300e3, 300e3, 64)
        power = np.where(np.abs(freqs + 100e3) < 30e3, 1.0, 1e-6)
        profile = FrequencyProfile(freqs, power)
        jam = ShapedJammer(profile, 600e3, rng=rng).generate(8192)
        assert band_power_fraction(jam, -140e3, -60e3) > 0.8

    def test_validation(self, rng):
        jammer = ShapedJammer.flat(300e3, 600e3, rng=rng)
        with pytest.raises(ValueError):
            jammer.generate(1)
        with pytest.raises(ValueError):
            jammer.generate(100, power=0.0)
        with pytest.raises(ValueError):
            ShapedJammer(FrequencyProfile.flat(8, 300e3), sample_rate=0.0)

    def test_profile_outside_sample_rate_rejected(self, rng):
        """A profile with no support inside the jammer's Nyquist band is
        a configuration error, not silent silence."""
        freqs = np.linspace(5e6, 6e6, 16)
        profile = FrequencyProfile(freqs, np.ones(16))
        jammer = ShapedJammer(profile, 600e3, rng=rng)
        with pytest.raises(ValueError):
            jammer.generate(1024)
