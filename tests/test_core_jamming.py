"""Tests for shaped jamming-signal generation (S6(a), Fig. 5)."""

import numpy as np
import pytest

from repro.core.jamming import ShapedJammer
from repro.phy.spectrum import FrequencyProfile, band_power_fraction


class TestShapedJammer:
    def test_power_budget_respected(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        jam = jammer.generate(4096, power=0.01)
        assert jam.power() == pytest.approx(0.01)

    def test_jam_is_random_never_repeats(self, rng):
        """S6: the jam acts as a one-time pad; two generations must be
        uncorrelated."""
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        a = jammer.generate(4096)
        b = jammer.generate(4096)
        corr = np.abs(np.vdot(a.samples, b.samples)) / (
            np.linalg.norm(a.samples) * np.linalg.norm(b.samples)
        )
        assert corr < 0.1

    def test_shaped_energy_sits_on_fsk_tones(self, rng):
        """Fig. 5: the shaped jam concentrates power where the FSK
        receiver listens."""
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        jam = jammer.generate(16384)
        tone_band = band_power_fraction(jam, 20e3, 80e3) + band_power_fraction(
            jam, -80e3, -20e3
        )
        assert tone_band > 0.5

    def test_flat_jammer_spreads_energy(self, rng):
        jammer = ShapedJammer.flat(300e3, 600e3, rng=rng)
        jam = jammer.generate(16384)
        tone_band = band_power_fraction(jam, 20e3, 80e3) + band_power_fraction(
            jam, -80e3, -20e3
        )
        # Two 60 kHz windows out of 300 kHz: ~40% of a flat spectrum.
        assert tone_band < 0.55

    def test_shaped_beats_flat_in_band(self, rng):
        """The Fig. 5 comparison, quantified: shaped jamming puts more
        power into the +/-50 kHz tone neighbourhoods at equal budget."""
        shaped = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng).generate(
            16384, power=1.0
        )
        flat = ShapedJammer.flat(300e3, 600e3, rng=rng).generate(16384, power=1.0)

        def tones(w):
            return band_power_fraction(w, 30e3, 70e3) + band_power_fraction(
                w, -70e3, -30e3
            )

        assert tones(shaped) > 1.3 * tones(flat)

    def test_custom_profile_followed(self, rng):
        """The generator must follow an arbitrary measured profile."""
        freqs = np.linspace(-300e3, 300e3, 64)
        power = np.where(np.abs(freqs + 100e3) < 30e3, 1.0, 1e-6)
        profile = FrequencyProfile(freqs, power)
        jam = ShapedJammer(profile, 600e3, rng=rng).generate(8192)
        assert band_power_fraction(jam, -140e3, -60e3) > 0.8

    def test_validation(self, rng):
        jammer = ShapedJammer.flat(300e3, 600e3, rng=rng)
        with pytest.raises(ValueError):
            jammer.generate(1)
        with pytest.raises(ValueError):
            jammer.generate(100, power=0.0)
        with pytest.raises(ValueError):
            ShapedJammer(FrequencyProfile.flat(8, 300e3), sample_rate=0.0)

    def test_profile_outside_sample_rate_rejected(self, rng):
        """A profile with no support inside the jammer's Nyquist band is
        a configuration error, not silent silence."""
        freqs = np.linspace(5e6, 6e6, 16)
        profile = FrequencyProfile(freqs, np.ones(16))
        jammer = ShapedJammer(profile, 600e3, rng=rng)
        with pytest.raises(ValueError):
            jammer.generate(1024)


class TestBatchedJamming:
    def test_batch_rows_hit_power_budget(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        batch = jammer.generate_batch(5, 4096, power=2.5)
        assert batch.shape == (5, 4096)
        row_power = np.mean(np.abs(batch) ** 2, axis=1)
        assert np.allclose(row_power, 2.5)

    def test_batch_rows_are_independent(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        batch = jammer.generate_batch(2, 2048)
        assert not np.allclose(batch[0], batch[1])

    def test_batch_validation(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        with pytest.raises(ValueError):
            jammer.generate_batch(0, 128)
        with pytest.raises(ValueError):
            jammer.generate_batch(1, 128, power=0.0)

    def test_spectral_scale_cached_per_length(self, rng):
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        jammer.generate(512)
        jammer.generate(512)
        assert set(jammer._scale_cache) == {512}


class TestToneCorrelationBatch:
    """The correlation-domain fast path must match the statistics of
    correlating really generated jams."""

    def test_moments_match_empirical(self):
        from repro.phy.fsk import FSKConfig, NoncoherentFSKDemodulator

        fsk = FSKConfig()
        rng = np.random.default_rng(99)
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        n_bits, count = 32, 1500
        spb = fsk.samples_per_bit
        demod = NoncoherentFSKDemodulator(fsk)
        templates = np.conj(np.stack([demod._template0, demod._template1], axis=1))
        jams = jammer.generate_batch(count, n_bits * spb, power=1.0)
        empirical = (jams.reshape(count * n_bits, spb) @ templates).reshape(
            count, n_bits, 2
        )
        synthetic = jammer.tone_correlation_batch(count, fsk, n_bits, power=1.0)
        assert synthetic.shape == (count, n_bits, 2)
        # Per-tone variance, cross-tone covariance, lag-1 autocovariance.
        for tone in (0, 1):
            assert np.var(synthetic[:, :, tone]) == pytest.approx(
                np.var(empirical[:, :, tone]), rel=0.1
            )
        emp_cross = np.mean(empirical[:, :, 0] * np.conj(empirical[:, :, 1]))
        syn_cross = np.mean(synthetic[:, :, 0] * np.conj(synthetic[:, :, 1]))
        assert abs(emp_cross - syn_cross) < 0.15 * np.var(empirical[:, :, 0])
        emp_lag = np.mean(empirical[:, 1:, 0] * np.conj(empirical[:, :-1, 0]))
        syn_lag = np.mean(synthetic[:, 1:, 0] * np.conj(synthetic[:, :-1, 0]))
        assert abs(emp_lag - syn_lag) < 0.15 * np.var(empirical[:, :, 0])

    def test_power_scaling(self):
        from repro.phy.fsk import FSKConfig

        fsk = FSKConfig()
        rng = np.random.default_rng(5)
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        base = jammer.tone_correlation_batch(400, fsk, 16, power=1.0)
        strong = jammer.tone_correlation_batch(400, fsk, 16, power=4.0)
        assert np.var(strong) == pytest.approx(4.0 * np.var(base), rel=0.15)

    def test_rejects_mismatched_sample_rate(self):
        from repro.phy.fsk import FSKConfig

        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3)
        with pytest.raises(ValueError):
            jammer.tone_correlation_batch(1, FSKConfig(sample_rate=1.2e6), 8)

    def test_factors_cached(self):
        from repro.phy.fsk import FSKConfig

        fsk = FSKConfig()
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3)
        jammer.tone_correlation_batch(1, fsk, 16)
        jammer.tone_correlation_batch(1, fsk, 16)
        assert list(jammer._correlation_cache) == [(fsk, 16)]
