"""Tests for the public location-sweep API."""

import pytest

from repro.experiments.sweeps import (
    LocationResult,
    attack_success_sweep,
    highpower_sweep,
)


class TestAttackSuccessSweep:
    def test_returns_all_requested_locations(self):
        results = attack_success_sweep(
            shield_present=False, n_trials=4, location_indices=(1, 8), seed=7
        )
        assert set(results) == {1, 8}
        assert all(isinstance(r, LocationResult) for r in results.values())

    def test_shielded_sweep_blocks(self):
        results = attack_success_sweep(
            shield_present=True, n_trials=6, location_indices=(1, 3), seed=7
        )
        assert all(r.success_probability == 0.0 for r in results.values())

    def test_unshielded_nearby_succeeds(self):
        results = attack_success_sweep(
            shield_present=False, n_trials=6, location_indices=(1,), seed=7
        )
        assert results[1].success_probability == 1.0

    def test_therapy_command_supported(self):
        results = attack_success_sweep(
            shield_present=False,
            n_trials=4,
            command="therapy",
            location_indices=(2,),
            seed=7,
        )
        assert results[2].success_probability == 1.0

    def test_wilson_interval_brackets_estimate(self):
        results = attack_success_sweep(
            shield_present=False, n_trials=10, location_indices=(8,), seed=7
        )
        r = results[8]
        low, high = r.wilson_interval()
        assert low <= r.success_probability <= high

    def test_highpower_sweep_alarms_near(self):
        results = highpower_sweep(
            shield_present=True, n_trials=6, location_indices=(1,), seed=7
        )
        assert results[1].alarm_probability == 1.0


class TestSweepExecution:
    def test_parallel_equals_serial_whole_location(self):
        kwargs = dict(
            shield_present=False, n_trials=6, location_indices=(1, 8), seed=3
        )
        serial = attack_success_sweep(workers=1, **kwargs)
        parallel = attack_success_sweep(workers=2, **kwargs)
        assert serial == parallel

    def test_parallel_equals_serial_chunked(self):
        kwargs = dict(
            shield_present=False,
            n_trials=9,
            location_indices=(1, 2),
            seed=3,
            chunk_size=4,
        )
        serial = attack_success_sweep(workers=1, **kwargs)
        parallel = attack_success_sweep(workers=3, **kwargs)
        assert serial == parallel

    def test_chunked_run_is_deterministic(self):
        kwargs = dict(
            shield_present=False,
            n_trials=8,
            location_indices=(2,),
            seed=11,
            chunk_size=3,
        )
        assert attack_success_sweep(**kwargs) == attack_success_sweep(**kwargs)

    def test_workers_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        env_run = attack_success_sweep(
            shield_present=False, n_trials=4, location_indices=(1,), seed=3
        )
        monkeypatch.delenv("REPRO_WORKERS")
        serial = attack_success_sweep(
            shield_present=False, n_trials=4, location_indices=(1,), seed=3
        )
        assert env_run == serial

    def test_rejects_unknown_command(self):
        with pytest.raises(ValueError):
            attack_success_sweep(
                shield_present=False,
                n_trials=2,
                command="explode",
                location_indices=(1,),
            )

    def test_duplicate_locations_collapse(self):
        doubled = attack_success_sweep(
            shield_present=False, n_trials=5, location_indices=(1, 1), seed=0
        )
        single = attack_success_sweep(
            shield_present=False, n_trials=5, location_indices=(1,), seed=0
        )
        assert doubled == single
        assert doubled[1].success_probability <= 1.0
