"""Streaming layer: coalescing hub, bounded queues, SSE endpoint.

The guarantee under test is the slow-consumer contract: every
subscriber owns a bounded queue, a slow or vanished subscriber loses
*its own* oldest frames (counted, never silent) and costs the engine
nothing -- the engine finishes on schedule no matter what the sockets
do.  The abrupt-disconnect test is the SIGKILLed-dashboard case from
the issue; the endpoint tests pin the four mounted paths, including
/metrics flowing through the same strict exposition validator as the
campaign exporter.
"""

import asyncio
import json

import pytest

from repro.live.clock import AcceleratedClock
from repro.live.engine import LiveConfig, LiveEngine
from repro.live.events import Alarm, LiveEvent
from repro.live.serve import (
    BroadcastHub,
    LiveServer,
    Subscriber,
    run_live,
)
from repro.obs.export import validate_exposition

_CFG = LiveConfig(n_patients=10, duration_s=6.0, attack_bursts=1, seed=4)


def _engine(speedup=600.0):
    return LiveEngine(_CFG, clock=AcceleratedClock(speedup))


def _vitals(t, patient, hr):
    return LiveEvent(t, patient, "vitals", {"hr_bpm": hr})


class TestSubscriber:
    def test_full_queue_drops_oldest_and_counts(self):
        async def scenario():
            sub = Subscriber(max_queue=3)
            for i in range(5):
                sub.offer(b"frame-%d" % i)
            return sub

        sub = asyncio.run(scenario())
        assert sub.dropped == 2
        assert list(sub.frames) == [b"frame-2", b"frame-3", b"frame-4"]

    def test_next_frames_drains_everything_queued(self):
        async def scenario():
            sub = Subscriber()
            sub.offer(b"a")
            sub.offer(b"b")
            frames = await sub.next_frames()
            return frames, len(sub.frames)

        frames, left = asyncio.run(scenario())
        assert frames == [b"a", b"b"] and left == 0

    def test_close_wakes_a_waiting_reader(self):
        async def scenario():
            sub = Subscriber()
            task = asyncio.ensure_future(sub.next_frames())
            await asyncio.sleep(0.01)
            sub.close()
            return await asyncio.wait_for(task, timeout=1.0)

        assert asyncio.run(scenario()) == []

    def test_rejects_non_positive_queue(self):
        with pytest.raises(ValueError):
            Subscriber(max_queue=0)


class TestBroadcastHub:
    def test_vitals_coalesce_latest_wins(self):
        async def scenario():
            hub = BroadcastHub()
            sub = hub.subscribe()
            hub.on_event(_vitals(1.0, 3, 70.0))
            hub.on_event(_vitals(2.0, 3, 80.0))  # supersedes
            hub.on_event(_vitals(2.0, 4, 60.0))
            hub.flush()
            frames = await sub.next_frames()
            return frames

        frames = asyncio.run(scenario())
        assert len(frames) == 1
        payload = json.loads(
            frames[0].split(b"data: ", 1)[1].split(b"\n", 1)[0]
        )
        assert payload["vitals"]["3"]["hr_bpm"] == 80.0
        assert payload["vitals"]["4"]["hr_bpm"] == 60.0

    def test_discrete_events_and_alarms_all_ride_the_frame(self):
        hub = BroadcastHub()
        hub.on_event(LiveEvent(1.0, 0, "attack", {"imd_accepted": False}))
        hub.on_alarm(Alarm(1.0, 0, "dos", "critical", "boom"))
        frame = hub.render_frame()
        payload = json.loads(
            frame.split(b"data: ", 1)[1].split(b"\n", 1)[0]
        )
        assert len(payload["events"]) == 1
        assert payload["alarms"][0]["rule"] == "dos"
        # Flushed state resets: an idle hub emits nothing.
        assert hub.render_frame() is None

    def test_one_flush_is_one_shared_frame_for_every_subscriber(self):
        hub = BroadcastHub()
        subs = [hub.subscribe() for _ in range(5)]
        hub.on_event(_vitals(1.0, 0, 70.0))
        assert hub.flush() == 5
        frames = [s.frames[0] for s in subs]
        assert all(f is frames[0] for f in frames)  # same bytes object

    def test_unsubscribe_stops_delivery(self):
        hub = BroadcastHub()
        sub = hub.subscribe()
        hub.unsubscribe(sub)
        hub.on_event(_vitals(1.0, 0, 70.0))
        hub.flush()
        assert sub.closed and len(sub.frames) == 0
        assert hub.subscribers == []


async def _sse_client(server, max_bytes=1 << 20, hold_open=False):
    """Subscribe and read until the server closes (or we have enough)."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
    await writer.drain()
    data = b""
    try:
        while len(data) < max_bytes:
            chunk = await asyncio.wait_for(reader.read(65536), timeout=5.0)
            if not chunk:
                break
            data += chunk
    except asyncio.TimeoutError:
        pass
    finally:
        if not hold_open:
            writer.close()
    return data


async def _get(server, path):
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=5.0)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestLiveServer:
    def test_two_subscribers_both_receive_events_and_alarms(self):
        async def scenario():
            engine = _engine()
            clients = []

            def on_started(server):
                clients.append(
                    asyncio.ensure_future(_sse_client(server))
                )
                clients.append(
                    asyncio.ensure_future(_sse_client(server))
                )

            snap = await run_live(
                engine, serve=True, linger_s=0.2, on_started=on_started
            )
            streams = await asyncio.gather(*clients)
            return engine, snap, streams

        engine, snap, streams = asyncio.run(scenario())
        assert engine.finished
        for stream in streams:
            assert stream.count(b"event: frame") >= 1
            payloads = [
                json.loads(line[len(b"data: "):])
                for line in stream.splitlines()
                if line.startswith(b"data: ")
            ]
            assert any(p["vitals"] for p in payloads)
            assert any(p["alarms"] for p in payloads)
        assert snap["frames_flushed"] >= 1

    def test_abrupt_disconnect_never_stalls_the_engine(self):
        async def scenario():
            engine = _engine()
            done = []

            async def kill_client(server):
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"GET /events HTTP/1.1\r\n\r\n")
                await writer.drain()
                await reader.read(512)
                # The SIGKILL stand-in: abort the transport with no
                # goodbye, mid-stream.
                writer.transport.abort()
                done.append(True)

            def on_started(server):
                done.append(asyncio.ensure_future(kill_client(server)))

            snap = await run_live(
                engine, serve=True, linger_s=0.1, on_started=on_started
            )
            await done[0]
            return engine, snap

        engine, snap = asyncio.run(scenario())
        assert engine.finished            # the engine never noticed
        assert snap["subscribers"] == 0   # the hub reaped the corpse

    def test_slow_consumer_loses_frames_not_the_engine(self):
        async def scenario():
            engine = _engine(speedup=2000.0)
            server = LiveServer(engine)
            server.hub.max_queue = 2
            # A subscriber that never reads: frames pile into its
            # bounded queue and the oldest fall off the end.  Flushing
            # per event makes the overflow deterministic instead of
            # racing the wall-clock flush loop.
            stuck = server.hub.subscribe()
            engine.add_event_listener(lambda _e: server.hub.flush())
            await engine.run()
            return engine, server, stuck

        engine, server, stuck = asyncio.run(scenario())
        assert engine.finished
        assert stuck.dropped > 0
        assert len(stuck.frames) <= 2
        assert server.snapshot()["frames_dropped"] == stuck.dropped

    def test_status_metrics_healthz_and_404(self):
        async def scenario():
            engine = _engine()
            results = {}

            async def probe(server):
                results["status"] = await _get(server, "/status")
                results["metrics"] = await _get(server, "/metrics")
                results["healthz"] = await _get(server, "/healthz")
                results["missing"] = await _get(server, "/nope")

            probes = []

            def on_started(server):
                probes.append(asyncio.ensure_future(probe(server)))

            await run_live(
                engine, serve=True, linger_s=0.3, on_started=on_started
            )
            await probes[0]
            return results

        results = asyncio.run(scenario())
        status, body = results["status"]
        assert status == 200
        snap = json.loads(body)
        assert snap["n_patients"] == _CFG.n_patients
        assert "subscribers" in snap
        status, body = results["metrics"]
        assert status == 200
        names = validate_exposition(body.decode())
        assert "repro_live_active_sessions" in names
        assert "repro_live_events_per_second" in names
        assert "repro_live_subscribers" in names
        assert results["healthz"] == (200, b"ok\n")
        assert results["missing"][0] == 404

    def test_rejects_non_get_requests(self):
        async def scenario():
            engine = _engine()
            server = LiveServer(engine)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"POST /events HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
            finally:
                await server.stop()
            return raw

        raw = asyncio.run(scenario())
        assert b"405" in raw.split(b"\r\n", 1)[0]

    def test_rejects_bad_flush_interval(self):
        with pytest.raises(ValueError):
            LiveServer(_engine(), flush_interval_s=0.0)
