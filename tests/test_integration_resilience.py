"""Resilience integration tests: DoS channel switching, two patients, CFO.

Three stories the substrate layers promise individually, checked end to
end:

* S2's persistent-interference rule: a denial-of-service jammer parked on
  the session channel forces the pair to a fresh channel, where the
  session completes;
* per-device identifying sequences (S7(a)): two patients with their own
  shields can stand next to each other -- each shield jams only commands
  addressed to *its* implant;
* S6(a)'s carrier-frequency-offset compensation keeps the optimal
  detector working when the IMD's crystal drifts.
"""

import numpy as np
import pytest

from repro.core.relay import ProgrammerLink, ShieldRelay
from repro.crypto.pairing import OutOfBandPairing
from repro.experiments.testbed import AttackTestbed, Placement
from repro.phy.cfo import apply_cfo, compensate_cfo, estimate_cfo_from_tone
from repro.phy.fsk import FSKModulator, NoncoherentFSKDemodulator
from repro.protocol.commands import CommandType
from repro.protocol.workflow import RelayedSessionWorkflow
from repro.sim.radio import RadioDevice


class _DoSJammer(RadioDevice):
    """Continuously occupies one channel with noise."""

    def __init__(self, simulator, channel, name="dos"):
        super().__init__(name, simulator, {channel})
        self.channel = channel

    def start(self, duration=10.0):
        self._require_air().transmit(
            source=self.name,
            channel=self.channel,
            tx_power_dbm=0.0,
            bit_rate=100e3,
            kind="jam",
            duration=duration,
        )


class TestPersistentInterferenceSwitch:
    def test_session_moves_off_a_jammed_channel(self):
        secret = OutOfBandPairing(b"sw").derive_secret("123456")
        bed = AttackTestbed(
            location_index=1, shield_present=True, jam_imd_replies=True, seed=31
        )
        bed.shield.relay = ShieldRelay(secret, bed.codec)
        link = ProgrammerLink(secret, bed.codec)
        flow = RelayedSessionWorkflow(
            bed.simulator, bed.shield, link, target_serial=bed.imd.serial
        )
        dos = _DoSJammer(bed.simulator, channel=0)
        bed.links.place(Placement("dos", location=bed.budget.geometry.location(4)))
        bed.air.register(dos)
        dos.start()

        outcome = flow.open()
        assert outcome.channel_index == 0
        # Commands on the jammed channel fail until the persistent-
        # interference rule trips and the session moves; the IMD rescans.
        for _ in range(flow.session.interference_limit):
            flow.interrogate()
        assert flow.channel_switches == 1
        assert outcome.channel_index != 0
        bed.imd_radio.retune(outcome.channel_index)

        flow.interrogate()
        assert len(outcome.telemetry_records) >= 1
        flow.close()


class TestTwoPatients:
    def test_each_shield_protects_only_its_own_imd(self):
        """Two shielded patients side by side: commands to patient B's
        implant are jammed by B's shield, ignored by A's."""
        from repro.core.config import ShieldConfig
        from repro.core.detector import ActiveDetector
        from repro.core.shield import ShieldRadio
        from repro.protocol.imd import IMDevice
        from repro.protocol.packets import Packet
        from repro.sim.radio import IMDRadio

        bed = AttackTestbed(location_index=2, shield_present=True, seed=32)

        serial_b = bytes(reversed(range(10)))
        imd_b = IMDevice(serial_b, codec=bed.codec, rng=np.random.default_rng(99))
        imd_b_radio = IMDRadio(bed.simulator, imd_b, channel=0, name="imd-b")
        bed.links.place(Placement("imd-b", in_phantom=True))
        bed.air.register(imd_b_radio)

        config = ShieldConfig(
            passive_jam_tx_dbm=bed.budget.passive_jam_tx_dbm(),
            detection_window_bits=bed.codec.header_bit_count(),
        )
        shield_b = ShieldRadio(
            bed.simulator,
            config,
            ActiveDetector(
                bed.codec.identifying_sequence(serial_b),
                b_thresh=config.b_thresh,
                p_thresh_dbm=config.p_thresh_dbm,
                anomaly_rssi_dbm=config.anomaly_rssi_dbm,
            ),
            session_channel=0,
            codec=bed.codec,
            name="shield-b",
            rng=np.random.default_rng(100),
            jam_imd_replies=False,
            imd_source_name="imd-b",
        )
        bed.links.place(Placement("shield-b", on_body=True))
        bed.air.register(shield_b)

        # Attack patient A's implant: only shield A jams.
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.shield_jammed
        assert not outcome.imd_responded
        assert bed.air.transmissions_by("shield-b", kind="jam") == []

        # Attack patient B's implant: only shield B jams.
        jams_a_before = len(bed.air.transmissions_by("shield", kind="jam"))
        packet_b = Packet(serial_b, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
        bed.attacker.send_packet(packet_b)
        bed.simulator.run(until=bed.simulator.now + 0.08)
        assert imd_b.transmissions == 0
        assert bed.air.transmissions_by("shield-b", kind="jam")
        assert (
            len(bed.air.transmissions_by("shield", kind="jam")) == jams_a_before
        )


class TestCFOCompensation:
    def test_drifting_imd_still_decodable_after_compensation(self, rng):
        """S6(a): 'the shield also compensates for any carrier frequency
        offset between its RF chain and that of the IMD'."""
        bits = rng.integers(0, 2, size=400)
        clean = FSKModulator().modulate(bits)
        # The envelope detector is naturally robust to small offsets (a
        # few kHz barely dents the 100 kHz tone spacing)...
        mild = apply_cfo(clean, 8.0e3).with_noise(1e-3, rng)
        demod = NoncoherentFSKDemodulator()
        mild_ber = float(np.mean(demod.demodulate(mild, n_bits=len(bits)) != bits))
        assert mild_ber < 0.01

        # ...but a drift that pushes one tone onto the opposite template
        # (>= the 50 kHz deviation) breaks it outright.
        drifted = apply_cfo(clean, 55.0e3).with_noise(1e-3, rng)
        raw_ber = float(np.mean(demod.demodulate(drifted, n_bits=len(bits)) != bits))
        estimate = estimate_cfo_from_tone(drifted, clean)
        fixed = compensate_cfo(drifted, estimate)
        fixed_ber = float(np.mean(demod.demodulate(fixed, n_bits=len(bits)) != bits))
        assert raw_ber > 0.03  # the drift genuinely hurts
        assert fixed_ber < 0.005

    def test_estimate_accuracy_at_mics_drift(self, rng):
        ref = FSKModulator().modulate(rng.integers(0, 2, size=600))
        for cfo in (-8e3, -1e3, 3e3, 8e3):
            drifted = apply_cfo(ref, cfo).with_noise(1e-2, rng)
            estimate = estimate_cfo_from_tone(drifted, ref)
            assert estimate == pytest.approx(cfo, abs=150.0)
