"""Tests for the shared-memory payload transport."""

import numpy as np
import pytest

from repro.runtime import SweepExecutor
from repro.runtime.transport import (
    DEFAULT_MIN_BYTES,
    TRANSPORT_ENV,
    ShmEncoded,
    decode_payload,
    encode_payload,
    resolve_transport,
    shm_call,
)


def _round_trip(obj, min_bytes=0):
    return decode_payload(encode_payload(obj, min_bytes=min_bytes))


class TestResolveTransport:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_transport() == "auto"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "shm")
        assert resolve_transport() == "shm"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "shm")
        assert resolve_transport("pickle") == "pickle"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "tcp")
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport()

    def test_explicit_choice_is_normalized_like_env(self, monkeypatch):
        """Regression: ``--transport SHM`` must equal REPRO_TRANSPORT=SHM.

        The env path always stripped/lowercased; an explicit argument
        used to skip normalization and reject the same spelling.
        """
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_transport(" SHM ") == "shm"
        assert resolve_transport("PICKLE") == "pickle"
        assert resolve_transport("Auto") == "auto"

    def test_env_value_is_normalized(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "  SHM\t")
        assert resolve_transport() == "shm"

    def test_blank_explicit_choice_means_auto(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_transport("   ") == "auto"

    def test_executor_accepts_uppercase_transport(self):
        assert SweepExecutor(1, transport="SHM").transport == "shm"


class TestEncodeDecode:
    def test_bare_array_round_trips(self):
        array = np.arange(1000, dtype=np.float64).reshape(20, 50)
        out = _round_trip(array)
        np.testing.assert_array_equal(out, array)
        assert out.dtype == array.dtype

    def test_nested_containers_round_trip(self):
        payload = {
            "a": np.arange(64).reshape(8, 8),
            "b": [np.ones(5, dtype=np.float32), {"deep": np.zeros(3)}],
            "c": (np.array([1 + 2j]), "text", 42, None),
        }
        out = _round_trip(payload)
        np.testing.assert_array_equal(out["a"], payload["a"])
        np.testing.assert_array_equal(out["b"][0], payload["b"][0])
        assert out["b"][0].dtype == np.float32
        np.testing.assert_array_equal(out["b"][1]["deep"], payload["b"][1]["deep"])
        assert isinstance(out["c"], tuple)
        np.testing.assert_array_equal(out["c"][0], payload["c"][0])
        assert out["c"][1:] == ("text", 42, None)

    def test_empty_array_round_trips(self):
        payload = {"empty": np.empty((0, 7)), "big": np.ones(100)}
        out = _round_trip(payload)
        assert out["empty"].shape == (0, 7)
        np.testing.assert_array_equal(out["big"], payload["big"])

    def test_non_contiguous_array_round_trips(self):
        base = np.arange(100).reshape(10, 10)
        view = base[::2, ::3]
        assert not view.flags["C_CONTIGUOUS"]
        out = _round_trip({"v": view})
        np.testing.assert_array_equal(out["v"], view)

    def test_no_arrays_passes_through_unchanged(self):
        payload = {"just": "scalars", "n": 3}
        assert encode_payload(payload, min_bytes=0) is payload

    def test_below_threshold_passes_through(self):
        payload = {"small": np.ones(4)}
        assert encode_payload(payload, min_bytes=DEFAULT_MIN_BYTES) is payload

    def test_above_threshold_encodes(self):
        payload = {"big": np.ones(DEFAULT_MIN_BYTES, dtype=np.uint8)}
        encoded = encode_payload(payload, min_bytes=DEFAULT_MIN_BYTES)
        assert isinstance(encoded, ShmEncoded)
        out = decode_payload(encoded)
        np.testing.assert_array_equal(out["big"], payload["big"])

    def test_decode_passes_plain_objects_through(self):
        payload = {"x": 1}
        assert decode_payload(payload) is payload

    def test_decode_result_owns_its_memory(self):
        array = np.arange(50, dtype=np.int64)
        out = _round_trip(array)
        out[:] = -1  # must not touch (or crash on) any shm segment
        np.testing.assert_array_equal(
            _round_trip(np.arange(50, dtype=np.int64)), np.arange(50)
        )

    def test_shm_call_wraps_worker_side(self):
        payload = encode_payload({"x": np.arange(10_000)}, min_bytes=0)
        result = shm_call(
            lambda unit: {"sum": unit["x"].sum(), "arr": unit["x"] * 2},
            payload,
            min_bytes=0,
        )
        assert isinstance(result, ShmEncoded)
        out = decode_payload(result)
        assert out["sum"] == np.arange(10_000).sum()
        np.testing.assert_array_equal(out["arr"], np.arange(10_000) * 2)


def _scale_unit(unit):
    """Module-level so it pickles into pool workers."""
    return {
        "index": unit["index"],
        "mean": float(unit["block"].mean()),
        "scaled": unit["block"] * 2.0,
    }


def _units(n=6, size=4096):
    rng = np.random.default_rng(42)
    return [
        {"index": i, "block": rng.standard_normal(size)} for i in range(n)
    ]


class TestExecutorTransport:
    def _run(self, **kwargs):
        results = SweepExecutor(**kwargs).map(_scale_unit, _units())
        return results

    def test_serial_parallel_shm_identical(self):
        serial = self._run(workers=1)
        pickled = self._run(workers=2, transport="pickle")
        shm = self._run(workers=2, transport="shm")
        auto = self._run(workers=2, transport="auto")
        for other in (pickled, shm, auto):
            assert len(other) == len(serial)
            for a, b in zip(serial, other):
                assert a["index"] == b["index"]
                assert a["mean"] == b["mean"]
                np.testing.assert_array_equal(a["scaled"], b["scaled"])

    def test_shm_inside_pool_session(self):
        executor = SweepExecutor(workers=2, transport="shm")
        with executor.pool_session():
            first = executor.map(_scale_unit, _units())
            second = executor.map(_scale_unit, _units())
        serial = self._run(workers=1)
        for run in (first, second):
            for a, b in zip(serial, run):
                np.testing.assert_array_equal(a["scaled"], b["scaled"])

    def test_env_transport_reaches_executor(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "shm")
        assert SweepExecutor().transport == "shm"

    def test_constructor_rejects_bad_transport(self):
        with pytest.raises(ValueError, match="unknown transport"):
            SweepExecutor(transport="udp")

    def test_auto_small_payloads_stay_pickle(self):
        """Auto mode on sub-threshold payloads is the identity wrap."""
        executor = SweepExecutor(workers=2, transport="auto")
        units = [{"i": i, "tiny": np.ones(3)} for i in range(3)]
        fn, wrapped = executor._apply_transport(lambda u: u, units)
        assert wrapped[0] is units[0]  # untouched: pickled as before

    def test_pickle_transport_is_identity(self):
        executor = SweepExecutor(workers=2, transport="pickle")
        units = [{"big": np.ones(1 << 17)}]
        fn, wrapped = executor._apply_transport(_scale_unit, units)
        assert fn is _scale_unit
        assert wrapped is units

    def test_no_leaked_segments(self):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        self._run(workers=2, transport="shm")
        for payload in (_units(2)[0], np.ones(2000)):
            _round_trip(payload)
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after <= before
