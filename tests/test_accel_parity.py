"""Parity properties: every accel kernel vs the pinned numpy reference.

Two layers of pinning.  First, the numpy reference kernels are checked
against straight-line inline formulas (the exact expressions the
pre-accel call sites computed) across hypothesis-driven dtype/shape/seed
sweeps -- so extracting the kernels cannot have changed a number.
Second, when numba is installed, its JIT overlay is checked against the
numpy reference on the same sweeps, bit-identical for the integer
kernels and tolerance-pinned for the float ones (JIT reassociation).
The numba legs skip cleanly when the dependency is missing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.accel import reference

pytestmark = pytest.mark.statistical

needs_numba = pytest.mark.skipif(
    not accel.numba_available(), reason="numba not installed"
)

seeds = st.integers(0, 2**32 - 1)


def _numba_kernel(name):
    fn = accel.get_kernel(name, backend="numba")
    assert fn is not accel.get_kernel(name, backend="numpy")
    return fn


def _jam_inputs(seed, n_jams, n_bits):
    rng = np.random.default_rng(seed)
    factor = rng.standard_normal((n_bits, 2, 2)) + 1j * rng.standard_normal(
        (n_bits, 2, 2)
    )
    draws = rng.standard_normal((n_jams, n_bits, 2)) + 1j * rng.standard_normal(
        (n_jams, n_bits, 2)
    )
    return factor, draws


def _fsk_inputs(seed, n_bits, sps):
    rng = np.random.default_rng(seed)
    chunks = rng.standard_normal((n_bits, sps)) + 1j * rng.standard_normal(
        (n_bits, sps)
    )
    correlators = rng.standard_normal((sps, 2)) + 1j * rng.standard_normal(
        (sps, 2)
    )
    return chunks, correlators


def _ecg_inputs(seed, n_records, n_samples, n_beats):
    rng = np.random.default_rng(seed)
    record_index = rng.integers(0, n_records, size=n_beats).astype(np.int64)
    # Centers deliberately spill past both edges to exercise clipping.
    centers = rng.uniform(-0.3, n_samples / 100.0 + 0.3, size=n_beats)
    amps = rng.standard_normal(n_beats)
    amps[rng.random(n_beats) < 0.2] = 0.0  # exercise the amp==0 skip
    return record_index, centers, amps


class TestNumpyReferenceVsInline:
    """The extracted numpy kernels reproduce the pre-accel expressions."""

    @given(seeds, st.integers(1, 12), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_jam_tone_colour(self, seed, n_jams, n_bits):
        factor, draws = _jam_inputs(seed, n_jams, n_bits)
        out = reference.jam_tone_colour(factor, draws)
        inline = (factor[None] @ draws[..., None])[..., 0]
        assert out.dtype == inline.dtype
        np.testing.assert_array_equal(out, inline)

    @given(seeds, st.integers(1, 64), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_fsk_coherent_bits(self, seed, n_bits, sps):
        chunks, correlators = _fsk_inputs(seed, n_bits, sps)
        h = 0.5
        out = reference.fsk_coherent_bits(chunks, correlators, h)
        correlations = chunks @ correlators
        rotation = np.exp(-1j * np.pi * h * np.arange(n_bits))
        metrics = np.real(correlations * rotation[:, None])
        inline = (metrics[:, 1] > metrics[:, 0]).astype(np.int64)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, inline)

    @given(seeds, st.integers(1, 5), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_ecg_wave_accumulate(self, seed, n_records, n_beats):
        n = 160
        fs, sigma, half = 100.0, 0.04, 8
        record_index, centers, amps = _ecg_inputs(seed, n_records, n, n_beats)
        flat = np.zeros(n_records * n)
        reference.ecg_wave_accumulate(
            flat, record_index, centers, amps, sigma, fs, half, n
        )
        expected = np.zeros(n_records * n)
        offsets = np.arange(-half, half + 1)
        idx = np.round(centers * fs).astype(np.int64)[:, None] + offsets
        t_rel = idx / fs - centers[:, None]
        values = amps[:, None] * np.exp(-0.5 * (t_rel / sigma) ** 2)
        valid = (idx >= 0) & (idx < n)
        flat_idx = record_index[:, None] * n + np.clip(idx, 0, n - 1)
        np.add.at(expected, flat_idx[valid], values[valid])
        np.testing.assert_array_equal(flat, expected)

    @given(seeds, st.integers(8, 256))
    @settings(max_examples=40, deadline=None)
    def test_hr_unbiased_autocorr(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        lag_hi = n - 1
        out = reference.hr_unbiased_autocorr(x, lag_hi)
        full = np.correlate(x, x, mode="full")[n - 1 :]
        inline = (full / (n - np.arange(n)))[: lag_hi + 1]
        np.testing.assert_array_equal(out, inline)

    @given(seeds, st.integers(0, 40), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_beat_refractory_suppress(self, seed, n_cands, refractory):
        rng = np.random.default_rng(seed)
        cands = rng.integers(0, 500, size=n_cands).astype(np.int64)
        out = reference.beat_refractory_suppress(cands, float(refractory))
        kept: list[int] = []
        for idx in cands:
            if all(abs(int(idx) - k) >= refractory for k in kept):
                kept.append(int(idx))
        assert out.dtype == np.int64
        assert out.tolist() == kept


@needs_numba
class TestNumbaVsNumpy:
    """The JIT overlay matches the reference on the same sweeps.

    Integer outputs (demod bits, kept beat indices) must be
    bit-identical; float outputs are tolerance-pinned because JIT loop
    nests may reassociate sums.
    """

    @given(seeds, st.integers(1, 12), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_jam_tone_colour(self, seed, n_jams, n_bits):
        factor, draws = _jam_inputs(seed, n_jams, n_bits)
        out = _numba_kernel("jam_tone_colour")(factor, draws)
        ref = reference.jam_tone_colour(factor, draws)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    @given(seeds, st.integers(1, 64), st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_fsk_coherent_bits(self, seed, n_bits, sps):
        chunks, correlators = _fsk_inputs(seed, n_bits, sps)
        out = _numba_kernel("fsk_coherent_bits")(chunks, correlators, 0.5)
        ref = reference.fsk_coherent_bits(chunks, correlators, 0.5)
        np.testing.assert_array_equal(out, ref)

    @given(seeds, st.integers(1, 5), st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_ecg_wave_accumulate(self, seed, n_records, n_beats):
        n = 160
        fs, sigma, half = 100.0, 0.04, 8
        record_index, centers, amps = _ecg_inputs(seed, n_records, n, n_beats)
        out = np.zeros(n_records * n)
        _numba_kernel("ecg_wave_accumulate")(
            out, record_index, centers, amps, sigma, fs, half, n
        )
        ref = np.zeros(n_records * n)
        reference.ecg_wave_accumulate(
            ref, record_index, centers, amps, sigma, fs, half, n
        )
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-14)

    @given(seeds, st.integers(8, 256))
    @settings(max_examples=25, deadline=None)
    def test_hr_unbiased_autocorr(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        lag_hi = min(n - 1, 181)
        out = _numba_kernel("hr_unbiased_autocorr")(x, lag_hi)
        ref = reference.hr_unbiased_autocorr(x, lag_hi)
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-12)

    @given(seeds, st.integers(0, 40), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_beat_refractory_suppress(self, seed, n_cands, refractory):
        rng = np.random.default_rng(seed)
        cands = rng.integers(0, 500, size=n_cands).astype(np.int64)
        out = _numba_kernel("beat_refractory_suppress")(
            cands, float(refractory)
        )
        ref = reference.beat_refractory_suppress(cands, float(refractory))
        np.testing.assert_array_equal(out, ref)


class TestCallSitesUseRegistry:
    """End-to-end: the hot call sites produce identical numbers whichever
    backend resolves (a numpy-only process exercises the dispatch path
    itself; with numba the comparison is substantive)."""

    def test_beat_detection_backend_invariant(self, monkeypatch):
        from repro.physio.inference import detect_beats

        rng = np.random.default_rng(7)
        x = rng.standard_normal(600)
        x[50::97] += 6.0
        monkeypatch.setenv(accel.ACCEL_ENV, "numpy")
        ref = detect_beats(x, sample_rate_hz=120.0)
        monkeypatch.setenv(accel.ACCEL_ENV, "auto")
        auto = detect_beats(x, sample_rate_hz=120.0)
        np.testing.assert_array_equal(ref, auto)

    def test_heart_rate_backend_invariant(self, monkeypatch):
        from repro.physio.inference import estimate_heart_rate

        rng = np.random.default_rng(11)
        t = np.arange(1024) / 120.0
        x = np.sin(2 * np.pi * 1.2 * t) + 0.1 * rng.standard_normal(1024)
        monkeypatch.setenv(accel.ACCEL_ENV, "numpy")
        ref = estimate_heart_rate(x, sample_rate_hz=120.0)
        monkeypatch.setenv(accel.ACCEL_ENV, "auto")
        auto = estimate_heart_rate(x, sample_rate_hz=120.0)
        if accel.numba_available():
            assert abs(ref - auto) < 1e-6
        else:
            assert ref == auto
