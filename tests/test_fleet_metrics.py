"""Population estimators: sketches and accumulators must merge exactly.

The streaming-reduction contract: absorbing patients one at a time,
merging shard accumulators in any order, and round-tripping through the
JSON cache payload must all reproduce the single-pass numbers exactly.
"""

import numpy as np
import pytest

from repro.fleet.metrics import (
    BER_STRATA,
    FleetAccumulator,
    FleetQuantileEstimator,
    QuantileSketch,
)


def _sketch(values, lo=0.0, hi=10.0, n_bins=1000) -> QuantileSketch:
    return QuantileSketch(lo, hi, n_bins).add_many(values)


class TestQuantileSketch:
    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError, match="lo < hi"):
            QuantileSketch(1.0, 1.0, 10)
        with pytest.raises(ValueError, match="n_bins"):
            QuantileSketch(0.0, 1.0, 0)

    def test_rejects_non_finite_values(self):
        with pytest.raises(ValueError, match="finite"):
            _sketch([1.0, float("nan")])

    def test_quantile_matches_numpy_within_resolution(self):
        """Sketch quantiles track numpy's within the sketch resolution.

        The sketch's rank convention (CDF inversion at rank q*n) and
        numpy's default (order-statistic interpolation at (n-1)*q)
        differ by at most one order-statistic spacing, plus one bin
        width of quantization -- that combined resolution is the
        documented accuracy contract.
        """
        rng = np.random.default_rng(3)
        values = np.sort(rng.uniform(0.0, 10.0, size=500))
        sketch = _sketch(values)
        bin_width = 10.0 / 1000
        spacing = float(np.diff(values).max())
        for q in (0.1, 0.25, 0.5, 0.9):
            exact = float(np.quantile(values, q))
            assert sketch.quantile(q) == pytest.approx(
                exact, abs=2 * bin_width + spacing
            )

    def test_out_of_range_values_clip_into_terminal_bins(self):
        sketch = _sketch([-5.0, 15.0, 5.0])
        assert sketch.count == 3
        assert sketch.quantile(0.0) <= 10.0 / 1000  # first bin
        assert sketch.quantile(1.0) == 10.0  # last bin's upper edge

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0, 10, size=400)
        whole = _sketch(values)
        parts = _sketch(values[:100]).merge(_sketch(values[100:]))
        assert np.array_equal(whole.counts, parts.counts)

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError, match="bin layouts"):
            _sketch([1.0]).merge(QuantileSketch(0.0, 10.0, 999))

    def test_payload_round_trip_is_exact(self):
        sketch = _sketch([0.1, 0.1, 7.3, 9.99])
        restored = QuantileSketch.from_payload(sketch.to_payload())
        assert np.array_equal(restored.counts, sketch.counts)
        assert (restored.lo, restored.hi, restored.n_bins) == (
            sketch.lo, sketch.hi, sketch.n_bins,
        )

    def test_payload_is_sparse(self):
        sketch = _sketch([5.0] * 1000)
        payload = sketch.to_payload()
        assert len(payload["bins"]) == 1
        assert payload["bin_counts"] == [1000]

    def test_quantile_interval_brackets_the_estimate(self):
        rng = np.random.default_rng(11)
        sketch = _sketch(rng.uniform(0, 10, size=300))
        low, high = sketch.quantile_interval(0.5)
        assert low <= sketch.quantile(0.5) <= high
        # More confidence -> wider bracket.
        low99, high99 = sketch.quantile_interval(0.5, confidence=0.99)
        assert low99 <= low and high <= high99

    def test_payload_with_negative_counts_rejected(self):
        """A tampered cache entry must be rejected, never merged."""
        payload = _sketch([1.0]).to_payload()
        payload["bin_counts"] = [-3]
        with pytest.raises(ValueError, match="negative"):
            QuantileSketch.from_payload(payload)

    def test_payload_with_mismatched_arrays_rejected(self):
        payload = _sketch([1.0]).to_payload()
        payload["bin_counts"] = [1, 2]
        with pytest.raises(ValueError, match="mismatch"):
            QuantileSketch.from_payload(payload)

    def test_empty_sketch_refuses_queries(self):
        sketch = QuantileSketch(0.0, 1.0, 10)
        with pytest.raises(ValueError, match="no samples"):
            sketch.quantile(0.5)
        with pytest.raises(ValueError, match="no samples"):
            sketch.quantile_interval(0.5)

    def test_estimator_view_duck_types_for_expectations(self):
        estimator = FleetQuantileEstimator(_sketch([1.0, 2.0, 3.0]), 0.5)
        assert estimator.count == 3
        low, high = estimator.interval(0.95)
        assert low <= estimator.estimate <= high


class TestFleetAccumulator:
    def _attack_acc(self, patients=10, seed=0) -> FleetAccumulator:
        rng = np.random.default_rng(seed)
        acc = FleetAccumulator()
        for _ in range(patients):
            wins = int(rng.integers(0, 3))
            acc.add_attack_patient(
                worn=bool(rng.random() < 0.8),
                wins=wins,
                alarms=int(rng.integers(0, 2)),
                trials=4,
                observation_days=1.0,
            )
        return acc

    def _physio_acc(self, patients=10, seed=0) -> FleetAccumulator:
        rng = np.random.default_rng(seed)
        acc = FleetAccumulator()
        for _ in range(patients):
            acc.add_physio_patient(
                worn=bool(rng.random() < 0.8),
                hr_abs_error=float(rng.uniform(0, 80)),
                mean_ber=float(rng.uniform(0, 0.5)),
            )
        return acc

    def test_merge_equals_single_pass_attack(self):
        whole = self._attack_acc(20)
        a = self._attack_acc(20)
        # Split by re-deriving: absorb the same stream into two halves.
        rng = np.random.default_rng(0)
        first, second = FleetAccumulator(), FleetAccumulator()
        for i in range(20):
            wins = int(rng.integers(0, 3))
            target = first if i < 9 else second
            target.add_attack_patient(
                worn=bool(rng.random() < 0.8),
                wins=wins,
                alarms=int(rng.integers(0, 2)),
                trials=4,
                observation_days=1.0,
            )
        merged = first.merge(second)
        assert merged.to_payload() == whole.to_payload() == a.to_payload()

    def test_payload_round_trip(self):
        for acc in (self._attack_acc(), self._physio_acc()):
            restored = FleetAccumulator.from_payload(acc.to_payload())
            assert restored.to_payload() == acc.to_payload()

    def test_payload_is_json_safe(self):
        import json

        json.loads(json.dumps(self._physio_acc().to_payload()))

    def test_prevalence_counts_patients_not_wins(self):
        acc = FleetAccumulator()
        acc.add_attack_patient(True, wins=3, alarms=0, trials=4,
                               observation_days=1.0)
        acc.add_attack_patient(True, wins=0, alarms=0, trials=4,
                               observation_days=1.0)
        est = acc.prevalence_estimator()
        assert est.successes == 1 and est.trials == 2

    def test_alarm_rate_scales_by_observation_days(self):
        acc = FleetAccumulator()
        acc.add_attack_patient(True, wins=0, alarms=4, trials=4,
                               observation_days=2.0)
        assert acc.alarm_rate_estimator().estimate == pytest.approx(2.0)

    def test_ber_strata_bucket_boundaries(self):
        acc = FleetAccumulator()
        acc.add_physio_patient(True, hr_abs_error=1.0, mean_ber=0.05)
        acc.add_physio_patient(True, hr_abs_error=1.0, mean_ber=0.25)
        acc.add_physio_patient(True, hr_abs_error=1.0, mean_ber=0.45)
        assert acc.strata == {"clean": 1, "degraded": 1, "jammed": 1}
        assert [name for name, _ in BER_STRATA] == list(acc.strata)

    def test_accumulator_size_is_independent_of_patient_count(self):
        """The streaming contract: no per-patient state, ever."""
        import json

        small = len(json.dumps(self._physio_acc(5).to_payload()))
        # A much larger cohort may light up more sketch bins, but the
        # payload is bounded by the (fixed) bin count, not by patients.
        big_acc = self._physio_acc(2000, seed=1)
        big = len(json.dumps(big_acc.to_payload()))
        cap = len(json.dumps(
            {
                **big_acc.to_payload(),
                "hr_sketch": {
                    "lo": 0.0, "hi": 200.0, "n_bins": 800,
                    "bins": list(range(800)),
                    "bin_counts": [10**6] * 800,
                },
            }
        ))
        assert small < big <= cap

    def test_mixed_merge_keeps_both_tasks(self):
        merged = self._attack_acc().merge(self._physio_acc())
        assert merged.trials_total > 0
        assert merged.physio_patients > 0
        assert merged.patients == 20
        assert merged.attack_patients == 10

    def test_mixed_accumulator_does_not_dilute_attack_metrics(self):
        """Prevalence and alarm burden are denominated in attack
        patients: absorbing physio encounters must not shrink them."""
        attack_only = self._attack_acc()
        prevalence = attack_only.prevalence_estimator().estimate
        alarm_rate = attack_only.alarm_rate_estimator().estimate
        mixed = self._attack_acc().merge(self._physio_acc())
        assert mixed.prevalence_estimator().estimate == prevalence
        assert mixed.alarm_rate_estimator().estimate == alarm_rate
