"""Tests for pathloss and body-loss models."""

import pytest

from repro.channel.models import (
    BodyLoss,
    DualSlopePathLoss,
    MICS_CENTER_FREQUENCY_HZ,
    free_space_path_loss_db,
)


class TestFreeSpace:
    def test_known_value_at_1m_403mhz(self):
        # FSPL(1 m, 403.5 MHz) ~ 24.6 dB.
        loss = free_space_path_loss_db(1.0, MICS_CENTER_FREQUENCY_HZ)
        assert loss == pytest.approx(24.56, abs=0.1)

    def test_inverse_square(self):
        l1 = free_space_path_loss_db(1.0, 400e6)
        l10 = free_space_path_loss_db(10.0, 400e6)
        assert l10 - l1 == pytest.approx(20.0, abs=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 400e6)
        with pytest.raises(ValueError):
            free_space_path_loss_db(1.0, 0.0)


class TestDualSlope:
    def test_reference_equals_free_space(self):
        m = DualSlopePathLoss()
        assert m.loss_db(m.reference_m) == pytest.approx(m.reference_loss_db)

    def test_near_slope(self):
        m = DualSlopePathLoss(near_exponent=2.0, reference_m=0.1)
        assert m.loss_db(1.0) - m.loss_db(0.1) == pytest.approx(20.0)

    def test_far_slope_steeper(self):
        m = DualSlopePathLoss()
        near_gain = m.loss_db(4.0) - m.loss_db(2.0)  # both below breakpoint
        far_gain = m.loss_db(20.0) - m.loss_db(10.0)  # both above
        assert far_gain > near_gain

    def test_continuous_at_breakpoint(self):
        m = DualSlopePathLoss()
        below = m.loss_db(m.breakpoint_m * 0.999)
        above = m.loss_db(m.breakpoint_m * 1.001)
        assert above - below < 0.1

    def test_monotone_in_distance(self):
        m = DualSlopePathLoss()
        distances = [0.2, 0.5, 1, 2, 5, 10, 20, 30]
        losses = [m.loss_db(d) for d in distances]
        assert all(a < b for a, b in zip(losses, losses[1:]))

    def test_extra_loss_added(self):
        m = DualSlopePathLoss()
        assert m.loss_db(10.0, extra_loss_db=15.0) == m.loss_db(10.0) + 15.0

    def test_rejects_negative_extra(self):
        with pytest.raises(ValueError):
            DualSlopePathLoss().loss_db(1.0, extra_loss_db=-1.0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            DualSlopePathLoss().loss_db(0.0)

    def test_below_reference_clamps(self):
        m = DualSlopePathLoss()
        assert m.loss_db(0.01) == m.loss_db(m.reference_m)

    def test_validation(self):
        with pytest.raises(ValueError):
            DualSlopePathLoss(near_exponent=-1.0)
        with pytest.raises(ValueError):
            DualSlopePathLoss(breakpoint_m=0.05, reference_m=0.1)


class TestBodyLoss:
    def test_default_within_published_range(self):
        """S7(b): in-body pathloss 'could be as high as 40 dB'."""
        assert 0 < BodyLoss().loss_db <= 40.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BodyLoss(loss_db=-5.0)
