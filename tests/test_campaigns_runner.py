"""Tests for the campaign runner: cache round trips, resume, determinism.

The load-bearing guarantee: a campaign interrupted mid-run and resumed
from cache produces **bit-identical** final numbers to an uninterrupted
serial run -- and a cached campaign reproduces the figure sweeps number
for number.
"""

import json

import pytest

import repro.campaigns.runner as runner_module
from repro.campaigns import CampaignRunner, registry
from repro.campaigns.spec import Scenario
from repro.experiments.sweeps import attack_success_sweep


def _small_attack(**changes) -> Scenario:
    base = dict(
        name="test-grid",
        kind="attack",
        attacker="fcc",
        command="therapy",
        shield_present=False,
        location_indices=(1, 8, 13),
        n_trials=4,
        seed=7,
    )
    base.update(changes)
    return Scenario(**base)


class TestAgainstSweepReference:
    def test_attack_campaign_matches_attack_success_sweep(self):
        scenario = _small_attack()
        result = CampaignRunner(scenario, persist=False).run()
        reference = attack_success_sweep(
            shield_present=False,
            n_trials=4,
            command="therapy",
            attacker="fcc",
            location_indices=(1, 8, 13),
            seed=7,
        )
        for point in result.points:
            ref = reference[point["axis"]]
            assert point["success_probability"] == ref.success_probability
            assert point["alarm_probability"] == ref.alarm_probability

    def test_registry_scenario_runs(self):
        scenario = registry.get("attack-success-shielded").override(
            location_indices=(1,), n_trials=2
        )
        result = CampaignRunner(scenario, persist=False).run()
        assert result.points[0]["success_probability"] == 0.0


class TestCacheRoundTrip:
    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        scenario = _small_attack()
        first = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert first.computed_units == first.total_units
        second = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert second.computed_units == 0
        assert second.cached_units == second.total_units
        assert second.points == first.points

    def test_passive_floats_survive_json_bit_exactly(self, tmp_path):
        scenario = Scenario(
            name="test-passive",
            kind="passive_ber",
            location_indices=(1, 18),
            n_trials=3,
            seed=3,
        )
        fresh = CampaignRunner(scenario, persist=False).run()
        CampaignRunner(scenario, cache_dir=tmp_path).run()
        cached = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert cached.computed_units == 0
        assert cached.points == fresh.points

    def test_parameter_change_invalidates_by_namespace(self, tmp_path):
        scenario = _small_attack()
        CampaignRunner(scenario, cache_dir=tmp_path).run()
        bumped = scenario.override(seed=8)
        result = CampaignRunner(bumped, cache_dir=tmp_path).run()
        assert result.computed_units == result.total_units
        assert (tmp_path / scenario.scenario_hash()).is_dir()
        assert (tmp_path / bumped.scenario_hash()).is_dir()

    @pytest.mark.parametrize(
        "garbage", [b"{ not json", b"\xff\xfe binary \x80"]
    )
    def test_corrupt_entry_recomputed(self, tmp_path, garbage):
        """Invalid JSON and non-UTF-8 bytes alike must read as absent."""
        scenario = _small_attack()
        first = CampaignRunner(scenario, cache_dir=tmp_path).run()
        victim = next(
            path
            for path in (tmp_path / scenario.scenario_hash()).iterdir()
            if path.name != "scenario.json"
        )
        victim.write_bytes(garbage)
        again = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert again.computed_units == 1
        assert again.points == first.points

    def test_force_recomputes_everything(self, tmp_path):
        scenario = _small_attack()
        CampaignRunner(scenario, cache_dir=tmp_path).run()
        forced = CampaignRunner(scenario, cache_dir=tmp_path).run(force=True)
        assert forced.computed_units == forced.total_units

    def test_manifest_written(self, tmp_path):
        scenario = _small_attack()
        CampaignRunner(scenario, cache_dir=tmp_path).run()
        manifest = json.loads(
            (tmp_path / scenario.scenario_hash() / "scenario.json").read_text()
        )
        assert manifest["name"] == scenario.name
        assert manifest["payload"] == scenario.payload()


class TestInterruptResume:
    def test_interrupted_campaign_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """Kill the run mid-campaign; the resumed run must complete from
        cache and match a fresh uninterrupted serial run exactly."""
        scenario = _small_attack(chunk_size=2)  # 3 locations x 2 chunks
        fresh = CampaignRunner(scenario, persist=False).run()

        real_evaluate = runner_module.evaluate_unit
        calls = {"n": 0}

        def dying_evaluate(spec):
            if calls["n"] >= 3:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_evaluate(spec)

        monkeypatch.setattr(runner_module, "evaluate_unit", dying_evaluate)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(scenario, cache_dir=tmp_path).run()
        monkeypatch.setattr(runner_module, "evaluate_unit", real_evaluate)

        status = CampaignRunner(scenario, cache_dir=tmp_path).status()
        assert status.cached_units == 3  # everything computed before the kill
        assert not status.complete

        resumed = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert resumed.cached_units == 3
        assert resumed.computed_units == status.total_units - 3
        assert resumed.points == fresh.points

    def test_materialize_limit_steps_toward_completion(self, tmp_path):
        scenario = _small_attack()
        runner = CampaignRunner(scenario, cache_dir=tmp_path)
        assert runner.materialize(limit=1) == 1
        assert runner.status().cached_units == 1
        assert runner.materialize() == 2
        assert runner.status().complete


class TestPlan:
    def test_chunking_shards_units(self):
        unchunked = CampaignRunner(_small_attack(), persist=False).plan()
        chunked = CampaignRunner(
            _small_attack(chunk_size=2), persist=False
        ).plan()
        assert len(unchunked) == 3
        assert len(chunked) == 6
        assert len({u.key for u in chunked}) == 6

    def test_unit_keys_stable(self):
        a = CampaignRunner(_small_attack(), persist=False).plan()
        b = CampaignRunner(_small_attack(), persist=False).plan()
        assert [u.key for u in a] == [u.key for u in b]

    def test_mimo_campaign_reduces_per_separation(self):
        scenario = registry.get("mimo-eavesdropper").override(
            separations_m=(0.02, 0.37), n_trials=2
        )
        result = CampaignRunner(scenario, persist=False).run()
        assert [p["axis"] for p in result.points] == [0.02, 0.37]
        assert all("jam_rejection_db" in p for p in result.points)
        # The design gradient: close separation protects better.
        assert result.points[0]["ber"] >= result.points[1]["ber"]
