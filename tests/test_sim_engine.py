"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import Simulator


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.schedule(0.1, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]

    def test_run_until_stops(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.now == 1.5

    def test_run_until_advances_time_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        result = []

        def first():
            sim.schedule(0.1, lambda: result.append("second"))

        sim.schedule(0.1, first)
        sim.run()
        assert result == ["second"]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.2, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending() == 0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.05, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_interleaved_runs_compose(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run(until=1.0)
        assert fired == ["a"]
        sim.run(until=2.0)
        assert fired == ["a", "b"]


class TestPendingCounter:
    """pending() is a maintained counter, not a heap scan -- its
    bookkeeping must survive every schedule/cancel/run interleaving."""

    def test_counts_scheduled_events(self):
        sim = Simulator()
        events = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(4)]
        assert sim.pending() == 4
        events[0].cancel()
        assert sim.pending() == 3

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        other = sim.schedule(0.2, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1
        other.cancel()
        assert sim.pending() == 0

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.pending() == 0
        event.cancel()
        assert sim.pending() == 0

    def test_partial_run_keeps_future_events_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.0)
        assert sim.pending() == 1

    def test_rescheduling_inside_callback(self):
        sim = Simulator()
        def reschedule():
            sim.schedule(1.0, lambda: None)
        sim.schedule(0.5, reschedule)
        sim.run(until=0.5)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0
