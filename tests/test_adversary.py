"""Tests for adversary models: eavesdropping strategies and active attacks."""

import numpy as np
import pytest

from repro.adversary.eavesdropper import Eavesdropper
from repro.adversary.strategies import (
    FilterBankStrategy,
    SpectralSubtractionStrategy,
    TreatJammingAsNoise,
)
from repro.adversary.highpower import HIGH_POWER_FACTOR_DB, HighPowerAttacker
from repro.core.jamming import ShapedJammer
from repro.experiments.testbed import AttackTestbed, ExperimentLinkModel, Placement
from repro.phy.fsk import FSKConfig, FSKModulator
from repro.phy.signal import Waveform


def _jammed_packet(rng, jammer, sir_db, n_bits=400):
    bits = rng.integers(0, 2, size=n_bits)
    signal = FSKModulator().modulate(bits)
    jam = jammer.generate(len(signal), power=10 ** (-sir_db / 10.0))
    mixed = Waveform(signal.samples + jam.samples, signal.sample_rate)
    return bits, mixed


class TestEavesdropperStrategies:
    def test_clean_signal_fully_decoded(self, rng):
        bits = rng.integers(0, 2, size=200)
        w = FSKModulator().modulate(bits)
        result = Eavesdropper().attack(w, bits)
        assert result.bit_error_rate == 0.0

    def test_shaped_jamming_reduces_to_guessing(self, rng):
        """S6: under shaped jamming at -20 dB SIR the eavesdropper's BER
        is ~50% no matter the strategy."""
        jammer = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        bits, mixed = _jammed_packet(rng, jammer, sir_db=-20.0, n_bits=2000)
        for strategy in (
            TreatJammingAsNoise(),
            FilterBankStrategy(),
            SpectralSubtractionStrategy(),
        ):
            result = Eavesdropper(strategy=strategy).attack(mixed, bits)
            assert 0.35 < result.bit_error_rate < 0.65, strategy.name

    def test_shaped_jamming_more_efficient_per_watt(self, rng):
        """The Fig. 5 point, measured end to end: at equal jamming power
        the shaped jam produces a higher eavesdropper BER than the
        constant-profile jam, because its energy sits where the FSK
        detector listens.  (The adversary's band-pass attack cannot
        recover the difference: the optimal noncoherent detector is
        already a matched filter, so out-of-band jamming is wasted --
        which is exactly why an efficient jammer must shape.)"""
        shaped = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        flat = ShapedJammer.flat(300e3, 600e3, rng=rng)
        bers = {}
        for name, jammer in (("shaped", shaped), ("flat", flat)):
            total = 0.0
            for _ in range(4):
                bits, mixed = _jammed_packet(rng, jammer, sir_db=-3.0, n_bits=2000)
                total += (
                    Eavesdropper(strategy=TreatJammingAsNoise())
                    .attack(mixed, bits)
                    .bit_error_rate
                )
            bers[name] = total / 4
        assert bers["shaped"] > bers["flat"] * 1.1

    def test_filter_bank_useless_against_shaped(self, rng):
        """...and why the shield shapes its jam: the same filter gains
        nothing when the jamming power already sits on the tones."""
        shaped = ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng)
        bits, mixed = _jammed_packet(rng, shaped, sir_db=-6.0, n_bits=2000)
        naive = Eavesdropper(strategy=TreatJammingAsNoise()).attack(mixed, bits)
        filtered = Eavesdropper(strategy=FilterBankStrategy()).attack(mixed, bits)
        assert filtered.bit_error_rate > naive.bit_error_rate * 0.7

    def test_result_reports_strategy(self, rng):
        bits = rng.integers(0, 2, size=50)
        w = FSKModulator().modulate(bits)
        result = Eavesdropper(strategy=FilterBankStrategy()).attack(w, bits)
        assert result.strategy == "FilterBankStrategy"


class TestActiveAttackers:
    def test_injector_sends_valid_packet(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=1)
        tx = bed.attacker.send_packet(bed.interrogate_packet())
        assert tx.n_bits == bed.codec.n_bits(bed.interrogate_packet())
        assert bed.attacker.sent == [tx]

    def test_highpower_eirp(self):
        from repro.sim.engine import Simulator

        attacker = HighPowerAttacker(
            Simulator(), channel=0, shield_tx_power_dbm=-16.0, antenna_gain_dbi=10.0
        )
        assert attacker.tx_power_dbm == pytest.approx(-16.0 + 20.0 + 10.0)
        assert attacker.amplifier_gain_db == HIGH_POWER_FACTOR_DB

    def test_highpower_gain_validation(self):
        from repro.sim.engine import Simulator

        with pytest.raises(ValueError):
            HighPowerAttacker(Simulator(), 0, antenna_gain_dbi=-3.0)

    def test_replay_attack_end_to_end(self, serial):
        """S9's methodology: record a programmer command off the air,
        demodulate to clean bits, replay it later -- the IMD accepts."""
        from repro.adversary.active import ReplayAttacker
        from repro.channel.link_budget import LinkBudget
        from repro.protocol.imd import IMDevice
        from repro.protocol.packets import PacketCodec
        from repro.protocol.programmer import Programmer
        from repro.sim.air import Air
        from repro.sim.engine import Simulator
        from repro.sim.radio import IMDRadio, ProgrammerRadio

        sim = Simulator()
        budget = LinkBudget()
        links = ExperimentLinkModel(budget)
        air = Air(sim, links, rng=np.random.default_rng(4))
        codec = PacketCodec()
        imd = IMDevice(serial, codec=codec)
        air_imd = IMDRadio(sim, imd, channel=0)
        links.place(Placement("imd", in_phantom=True))
        air.register(air_imd)
        programmer = Programmer(target_serial=serial, codec=codec)
        prog_radio = ProgrammerRadio(sim, programmer, channel=0)
        links.place(Placement("programmer", location=budget.geometry.location(3)))
        air.register(prog_radio)
        attacker = ReplayAttacker(
            sim, channel=0, tx_power_dbm=-16.0, codec=codec, name="adversary"
        )
        links.place(Placement("adversary", location=budget.geometry.location(5)))
        air.register(attacker)

        # Legitimate exchange, overheard by the attacker.
        prog_radio.send_command(programmer.interrogate(), skip_lbt=True)
        sim.run(until=0.1)
        assert len(attacker.recorded) == 1
        before = imd.transmissions
        # Later: the attacker replays the clean re-modulated copy.
        attacker.replay()
        sim.run(until=0.2)
        assert imd.transmissions == before + 1

    def test_replay_ignores_imd_responses(self, serial):
        """The replay attacker keeps commands, not telemetry."""
        bed = AttackTestbed(location_index=1, shield_present=False, seed=1)
        bed.attack_once(bed.interrogate_packet())  # IMD replies once
        # The CommandInjector in the bed is not a recorder; build one and
        # feed it the reply reception directly.
        from repro.adversary.active import ReplayAttacker

        recorder = ReplayAttacker(
            bed.simulator, channel=0, tx_power_dbm=-16.0, codec=bed.codec, name="rec"
        )
        bed.links.place(
            Placement("rec", location=bed.budget.geometry.location(2))
        )
        bed.air.register(recorder)
        bed.attack_once(bed.interrogate_packet())
        assert all(
            not p.opcode.is_imd_response for p in recorder.recorded
        )

    def test_replay_with_nothing_recorded(self):
        from repro.adversary.active import ReplayAttacker
        from repro.sim.engine import Simulator

        attacker = ReplayAttacker(Simulator(), channel=0, tx_power_dbm=-16.0)
        with pytest.raises(RuntimeError):
            attacker.replay()
