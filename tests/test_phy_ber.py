"""Tests for the analytic error-rate models."""

import math

import numpy as np
import pytest

from repro.phy.ber import (
    ber_to_packet_error_rate,
    coherent_fsk_ber,
    flip_bits,
    noncoherent_fsk_ber,
    sample_bit_errors,
    sinr_linear,
)


class TestNoncoherentBER:
    def test_known_value_at_10db(self):
        # 0.5 exp(-10/2) with SNR linear = 10.
        assert noncoherent_fsk_ber(10.0) == pytest.approx(0.5 * math.exp(-5.0))

    def test_saturates_at_half(self):
        assert noncoherent_fsk_ber(-60.0) == pytest.approx(0.5, abs=1e-3)

    def test_monotone_decreasing(self):
        values = [noncoherent_fsk_ber(s) for s in range(-10, 30, 2)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_negligible_at_high_snr(self):
        assert noncoherent_fsk_ber(25.0) < 1e-60


class TestCoherentBER:
    def test_coherent_beats_noncoherent(self):
        for snr in [0.0, 5.0, 10.0, 15.0]:
            assert coherent_fsk_ber(snr) < noncoherent_fsk_ber(snr)

    def test_half_at_no_signal(self):
        assert coherent_fsk_ber(-80.0) == pytest.approx(0.5, abs=1e-3)


class TestPacketErrorRate:
    def test_zero_ber_means_zero_per(self):
        assert ber_to_packet_error_rate(0.0, 1000) == 0.0

    def test_one_bit_packet(self):
        assert ber_to_packet_error_rate(0.1, 1) == pytest.approx(0.1)

    def test_matches_complement_product(self):
        assert ber_to_packet_error_rate(1e-3, 200) == pytest.approx(
            1 - (1 - 1e-3) ** 200
        )

    def test_rejects_invalid_ber(self):
        with pytest.raises(ValueError):
            ber_to_packet_error_rate(1.5, 10)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            ber_to_packet_error_rate(0.1, -1)

    def test_zero_bits_never_errors(self):
        assert ber_to_packet_error_rate(0.5, 0) == 0.0


class TestSinr:
    def test_basic(self):
        assert sinr_linear(10.0, 4.0, 1.0) == pytest.approx(2.0)

    def test_infinite_when_clean(self):
        assert sinr_linear(1.0, 0.0, 0.0) == math.inf


class TestSampling:
    def test_sample_rate_statistics(self, rng):
        mask = sample_bit_errors(0.25, 100_000, rng)
        assert mask.mean() == pytest.approx(0.25, abs=0.01)

    def test_zero_rate_is_all_false(self, rng):
        assert not sample_bit_errors(0.0, 1000, rng).any()

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            sample_bit_errors(-0.1, 10, rng)

    def test_flip_bits_preserves_length_and_alphabet(self, rng):
        bits = rng.integers(0, 2, size=500)
        flipped = flip_bits(bits, 0.5, rng)
        assert flipped.shape == bits.shape
        assert set(np.unique(flipped)) <= {0, 1}

    def test_flip_bits_zero_rate_identity(self, rng):
        bits = rng.integers(0, 2, size=64)
        assert np.array_equal(flip_bits(bits, 0.0, rng), bits)

    def test_flip_bits_certain_rate_inverts(self, rng):
        bits = rng.integers(0, 2, size=64)
        assert np.array_equal(flip_bits(bits, 1.0, rng), 1 - bits)
