"""Safety-property tests: emergency access and emergency transmissions.

The paper's central safety arguments (S1, S3.1):

* medical personnel regain *full* access by removing or powering off the
  shield -- no credentials, because the IMD was never modified;
* an IMD that detects a life-threatening condition transmits immediately
  and unsolicited; the shield must never jam its own patient's alert.
"""

import pytest

from repro.experiments.testbed import AttackTestbed, Placement
from repro.protocol.commands import CommandType
from repro.protocol.programmer import Programmer
from repro.sim.radio import ProgrammerRadio


class TestEmergencyAccess:
    """S1: 'empowers medical personnel to access a protected IMD by
    removing the external device or powering it off'."""

    def _bed_with_er_programmer(self, seed=50):
        bed = AttackTestbed(
            location_index=2, shield_present=True, jam_imd_replies=True, seed=seed
        )
        programmer = Programmer(target_serial=bed.imd.serial, codec=bed.codec)
        radio = ProgrammerRadio(bed.simulator, programmer, channel=0, name="er")
        bed.links.place(Placement("er", location=bed.budget.geometry.location(2)))
        bed.air.register(radio)
        return bed, programmer, radio

    def test_shield_blocks_even_honest_direct_access(self):
        """By design the shield jams *any* direct communication with the
        IMD -- including an honest programmer that skips the relay."""
        bed, programmer, radio = self._bed_with_er_programmer()
        radio.send_command(programmer.interrogate(), skip_lbt=True)
        bed.simulator.run(until=0.1)
        assert bed.imd.transmissions == 0

    def test_power_off_restores_direct_access(self):
        """An emergency-room programmer with no credentials powers the
        shield off and talks to the IMD immediately."""
        bed, programmer, radio = self._bed_with_er_programmer()
        bed.shield.power_off()
        radio.send_command(programmer.interrogate(), skip_lbt=True)
        bed.simulator.run(until=0.1)
        assert bed.imd.transmissions == 1
        assert len(programmer.replies) == 1
        assert programmer.replies[0].opcode is CommandType.TELEMETRY

    def test_power_off_ends_active_jamming(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=51)
        bed.attacker.send_packet(bed.interrogate_packet())
        # Power off mid-jam.
        bed.simulator.run(until=1.5e-3)
        bed.shield.power_off()
        bed.simulator.run(until=0.1)
        for jam in bed.air.transmissions_by("shield", kind="jam"):
            assert jam.end_time is not None

    def test_power_cycle_resumes_protection(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=52)
        bed.shield.power_off()
        assert bed.attack_once(bed.interrogate_packet()).imd_responded
        bed.shield.power_on()
        outcome = bed.attack_once(bed.interrogate_packet())
        assert not outcome.imd_responded
        assert outcome.shield_jammed

    def test_powered_off_shield_stays_silent(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=53)
        bed.shield.start_probing()
        bed.shield.power_off()
        bed.attack_once(bed.interrogate_packet())
        bed.simulator.run(until=1.0)
        assert bed.air.transmissions_by("shield") == []


class TestEmergencyTransmission:
    """S3.1: unsolicited life-threatening-condition transmissions are
    not protected -- and must not be jammed by the patient's own shield."""

    def test_shield_does_not_jam_emergency_alert(self):
        bed = AttackTestbed(
            location_index=2, shield_present=True, jam_imd_replies=True, seed=60
        )
        bed.imd_radio.transmit_emergency()
        bed.simulator.run(until=0.1)
        assert bed.air.transmissions_by("shield", kind="jam") == []
        # The alert reached the outside world intact (observer copy).
        receptions = bed.observer.packets_from("imd")
        assert len(receptions) == 1
        assert receptions[0].bit_flips == 0

    def test_emergency_alert_carries_marker_and_telemetry(self):
        bed = AttackTestbed(location_index=2, shield_present=True, seed=61)
        bed.imd_radio.transmit_emergency()
        bed.simulator.run(until=0.1)
        reception = bed.observer.packets_from("imd")[0]
        packet = bed.codec.decode(reception.bits)
        assert packet.opcode is CommandType.TELEMETRY
        assert packet.payload.startswith(b"EMERGENCY")

    def test_emergency_spends_battery(self):
        bed = AttackTestbed(location_index=2, shield_present=True, seed=62)
        before = bed.imd.battery_spent_j
        bed.imd_radio.transmit_emergency()
        assert bed.imd.battery_spent_j > before

    def test_forged_response_frames_not_jammed_but_harmless(self):
        """An adversary transmitting with a response opcode escapes the
        jammer -- and accomplishes nothing, because the IMD ignores
        response opcodes."""
        from repro.protocol.packets import Packet

        bed = AttackTestbed(location_index=1, shield_present=True, seed=63)
        forged = Packet(bed.imd.serial, CommandType.TELEMETRY, 1, b"fake")
        outcome = bed.attack_once(forged)
        assert not outcome.shield_jammed
        assert not outcome.imd_accepted
        assert not outcome.imd_responded
