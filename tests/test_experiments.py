"""Tests for metrics, reporting, testbed wiring, and the waveform lab."""

import numpy as np
import pytest

from repro.channel.link_budget import LinkBudget
from repro.experiments.metrics import empirical_cdf, success_probability, summarize
from repro.experiments.report import ExperimentReport
from repro.experiments.testbed import AttackTestbed, ExperimentLinkModel, Placement
from repro.experiments.waveform_lab import (
    PassiveLab,
    cancellation_samples,
    fsk_profile_peaks,
)


class TestMetrics:
    def test_empirical_cdf(self):
        values, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert np.allclose(values, [1.0, 2.0, 3.0])
        assert np.allclose(cdf, [1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_summarize_single(self):
        assert summarize([5.0]).std == 0.0

    def test_success_probability_wilson(self):
        p, low, high = success_probability(59, 100)
        assert p == pytest.approx(0.59)
        assert low < 0.59 < high
        assert high - low < 0.25

    def test_success_probability_extremes(self):
        p0, low0, _ = success_probability(0, 100)
        p1, _, high1 = success_probability(100, 100)
        assert p0 == 0.0 and low0 == pytest.approx(0.0, abs=1e-9)
        assert p1 == 1.0 and high1 == pytest.approx(1.0, abs=1e-9)

    def test_success_probability_validation(self):
        with pytest.raises(ValueError):
            success_probability(5, 0)
        with pytest.raises(ValueError):
            success_probability(11, 10)
        with pytest.raises(ValueError):
            success_probability(1, 10, confidence=0.5)


class TestReport:
    def test_render_contains_rows(self):
        report = ExperimentReport("Fig. 9")
        report.add("BER at adversary", "~0.50", "0.49")
        out = report.render()
        assert "Fig. 9" in out and "~0.50" in out and "0.49" in out

    def test_empty_report(self):
        assert "(no rows)" in ExperimentReport("empty").render()


class TestLinkModelWiring:
    @pytest.fixture
    def links(self):
        budget = LinkBudget()
        model = ExperimentLinkModel(budget)
        model.place(Placement("imd", in_phantom=True))
        model.place(Placement("observer", in_phantom=True))
        model.place(Placement("shield", on_body=True))
        model.place(
            Placement("adversary", location=budget.geometry.location(1))
        )
        return budget, model

    def test_adversary_to_imd_includes_body(self, links):
        budget, model = links
        to_imd = model.link_loss_db("adversary", "imd")
        to_shield = model.link_loss_db("adversary", "shield")
        assert to_imd - to_shield == pytest.approx(budget.body.loss_db)

    def test_in_phantom_link_small(self, links):
        budget, model = links
        assert model.link_loss_db("imd", "observer") == pytest.approx(10.0)

    def test_shield_imd_link(self, links):
        budget, model = links
        expected = budget.geometry.shield_to_imd_loss_db() + budget.body.loss_db
        assert model.link_loss_db("shield", "imd") == pytest.approx(expected)

    def test_symmetry(self, links):
        budget, model = links
        assert model.link_loss_db("imd", "adversary") == pytest.approx(
            model.link_loss_db("adversary", "imd")
        )

    def test_noise_floor_roles(self, links):
        budget, model = links
        assert model.noise_power_dbm("imd") > model.noise_power_dbm("shield")

    def test_unplaced_device_is_error(self, links):
        _, model = links
        with pytest.raises(KeyError):
            model.link_loss_db("ghost", "imd")

    def test_placement_exactly_one_kind(self):
        with pytest.raises(ValueError):
            Placement("x", in_phantom=True, on_body=True)
        with pytest.raises(ValueError):
            Placement("x")


class TestAttackTestbed:
    def test_invalid_attacker_kind(self):
        with pytest.raises(ValueError):
            AttackTestbed(location_index=1, attacker="quantum")

    def test_unshielded_attack_succeeds_nearby(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.imd_responded

    def test_shielded_attack_fails_nearby(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=0)
        outcome = bed.attack_once(bed.interrogate_packet())
        assert not outcome.imd_responded

    def test_therapy_alternates_so_changes_observable(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        first = bed.attack_once(bed.therapy_packet())
        second = bed.attack_once(bed.therapy_packet())
        assert first.therapy_changed and second.therapy_changed

    def test_trials_runner(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        outcomes = bed.run_trials(5, command="interrogate")
        assert len(outcomes) == 5
        assert all(o.imd_responded for o in outcomes)

    def test_trials_unknown_command(self):
        bed = AttackTestbed(location_index=1, seed=0)
        with pytest.raises(ValueError):
            bed.run_trials(1, command="explode")


class TestWaveformLab:
    def test_fsk_profile_matches_fig4(self):
        peaks, frac = fsk_profile_peaks()
        assert peaks[0] == pytest.approx(-50e3, abs=8e3)
        assert peaks[1] == pytest.approx(50e3, abs=8e3)
        assert frac > 0.6

    def test_cancellation_mean_near_32(self):
        samples = cancellation_samples(n_runs=60, jam_samples=1024)
        assert 28.0 < float(np.mean(samples)) < 36.0

    def test_trial_at_operating_point(self):
        lab = PassiveLab(seed=3)
        trial = lab.run_trial(jam_margin_db=20.0)
        assert trial.eavesdropper_ber > 0.4
        assert not trial.shield_packet_lost

    def test_no_jamming_eavesdropper_reads_everything(self):
        lab = PassiveLab(seed=4)
        trial = lab.run_trial(jam_margin_db=-40.0)
        assert trial.eavesdropper_ber < 0.01

    def test_tradeoff_monotone_in_margin(self):
        lab = PassiveLab(seed=5)
        points = lab.tradeoff_sweep([0.0, 20.0], n_packets=12)
        assert points[1].eavesdropper_ber > points[0].eavesdropper_ber

    def test_ber_by_location_all_near_half(self):
        lab = PassiveLab(seed=6)
        out = lab.ber_by_location(n_packets=6, location_indices=(1, 9, 18))
        for ber in out.values():
            assert ber > 0.4
