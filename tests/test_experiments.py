"""Tests for metrics, reporting, testbed wiring, and the waveform lab."""

import numpy as np
import pytest

from repro.channel.link_budget import LinkBudget
from repro.experiments.metrics import empirical_cdf, success_probability, summarize
from repro.experiments.report import ExperimentReport
from repro.experiments.testbed import AttackTestbed, ExperimentLinkModel, Placement
from repro.experiments.waveform_lab import (
    PassiveLab,
    cancellation_samples,
    fsk_profile_peaks,
)


class TestMetrics:
    def test_empirical_cdf(self):
        values, cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert np.allclose(values, [1.0, 2.0, 3.0])
        assert np.allclose(cdf, [1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        with pytest.raises(ValueError, match="need at least 2"):
            empirical_cdf([])

    def test_empirical_cdf_single_element(self):
        """A one-point CDF is degenerate; refuse it loudly (regression:
        used to return a single step silently)."""
        with pytest.raises(ValueError, match="1 sample"):
            empirical_cdf([2.5])

    def test_empirical_cdf_rejects_non_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            empirical_cdf([1.0, float("nan"), 3.0])
        with pytest.raises(ValueError, match="non-finite"):
            empirical_cdf([1.0, float("inf")])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_summarize_empty(self):
        with pytest.raises(ValueError, match="need at least 2"):
            summarize([])

    def test_summarize_single_element(self):
        """The ddof=1 sample std is undefined for one sample (regression:
        used to report std=0.0, which reads as 'perfectly precise')."""
        with pytest.raises(ValueError, match="1 sample"):
            summarize([5.0])

    def test_summarize_rejects_non_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            summarize([1.0, float("-inf")])

    def test_success_probability_wilson(self):
        p, low, high = success_probability(59, 100)
        assert p == pytest.approx(0.59)
        assert low < 0.59 < high
        assert high - low < 0.25

    def test_success_probability_extremes(self):
        p0, low0, _ = success_probability(0, 100)
        p1, _, high1 = success_probability(100, 100)
        assert p0 == 0.0 and low0 == pytest.approx(0.0, abs=1e-9)
        assert p1 == 1.0 and high1 == pytest.approx(1.0, abs=1e-9)

    def test_success_probability_validation(self):
        with pytest.raises(ValueError):
            success_probability(5, 0)
        with pytest.raises(ValueError):
            success_probability(11, 10)
        with pytest.raises(ValueError):
            success_probability(1, 10, confidence=1.5)

    def test_success_probability_arbitrary_confidence(self):
        """Non-tabled confidence levels now resolve through scipy."""
        _, low80, high80 = success_probability(5, 10, confidence=0.80)
        _, low95, high95 = success_probability(5, 10, confidence=0.95)
        assert low95 < low80 < high80 < high95


class TestReport:
    def test_render_contains_rows(self):
        report = ExperimentReport("Fig. 9")
        report.add("BER at adversary", "~0.50", "0.49")
        out = report.render()
        assert "Fig. 9" in out and "~0.50" in out and "0.49" in out

    def test_empty_report(self):
        assert "(no rows)" in ExperimentReport("empty").render()


class TestLinkModelWiring:
    @pytest.fixture
    def links(self):
        budget = LinkBudget()
        model = ExperimentLinkModel(budget)
        model.place(Placement("imd", in_phantom=True))
        model.place(Placement("observer", in_phantom=True))
        model.place(Placement("shield", on_body=True))
        model.place(
            Placement("adversary", location=budget.geometry.location(1))
        )
        return budget, model

    def test_adversary_to_imd_includes_body(self, links):
        budget, model = links
        to_imd = model.link_loss_db("adversary", "imd")
        to_shield = model.link_loss_db("adversary", "shield")
        assert to_imd - to_shield == pytest.approx(budget.body.loss_db)

    def test_in_phantom_link_small(self, links):
        budget, model = links
        assert model.link_loss_db("imd", "observer") == pytest.approx(10.0)

    def test_shield_imd_link(self, links):
        budget, model = links
        expected = budget.geometry.shield_to_imd_loss_db() + budget.body.loss_db
        assert model.link_loss_db("shield", "imd") == pytest.approx(expected)

    def test_symmetry(self, links):
        budget, model = links
        assert model.link_loss_db("imd", "adversary") == pytest.approx(
            model.link_loss_db("adversary", "imd")
        )

    def test_noise_floor_roles(self, links):
        budget, model = links
        assert model.noise_power_dbm("imd") > model.noise_power_dbm("shield")

    def test_unplaced_device_is_error(self, links):
        _, model = links
        with pytest.raises(KeyError):
            model.link_loss_db("ghost", "imd")

    def test_placement_exactly_one_kind(self):
        with pytest.raises(ValueError):
            Placement("x", in_phantom=True, on_body=True)
        with pytest.raises(ValueError):
            Placement("x")


class TestAttackTestbed:
    def test_invalid_attacker_kind(self):
        with pytest.raises(ValueError):
            AttackTestbed(location_index=1, attacker="quantum")

    def test_unshielded_attack_succeeds_nearby(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.imd_responded

    def test_shielded_attack_fails_nearby(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=0)
        outcome = bed.attack_once(bed.interrogate_packet())
        assert not outcome.imd_responded

    def test_therapy_alternates_so_changes_observable(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        first = bed.attack_once(bed.therapy_packet())
        second = bed.attack_once(bed.therapy_packet())
        assert first.therapy_changed and second.therapy_changed

    def test_trials_runner(self):
        bed = AttackTestbed(location_index=1, shield_present=False, seed=0)
        outcomes = bed.run_trials(5, command="interrogate")
        assert len(outcomes) == 5
        assert all(o.imd_responded for o in outcomes)

    def test_trials_unknown_command(self):
        bed = AttackTestbed(location_index=1, seed=0)
        with pytest.raises(ValueError):
            bed.run_trials(1, command="explode")


class TestWaveformLab:
    def test_fsk_profile_matches_fig4(self):
        peaks, frac = fsk_profile_peaks()
        assert peaks[0] == pytest.approx(-50e3, abs=8e3)
        assert peaks[1] == pytest.approx(50e3, abs=8e3)
        assert frac > 0.6

    def test_cancellation_mean_near_32(self):
        samples = cancellation_samples(n_runs=60, jam_samples=1024)
        assert 28.0 < float(np.mean(samples)) < 36.0

    def test_trial_at_operating_point(self):
        lab = PassiveLab(seed=3)
        trial = lab.run_trial(jam_margin_db=20.0)
        assert trial.eavesdropper_ber > 0.4
        assert not trial.shield_packet_lost

    def test_no_jamming_eavesdropper_reads_everything(self):
        lab = PassiveLab(seed=4)
        trial = lab.run_trial(jam_margin_db=-40.0)
        assert trial.eavesdropper_ber < 0.01

    def test_tradeoff_monotone_in_margin(self):
        lab = PassiveLab(seed=5)
        points = lab.tradeoff_sweep([0.0, 20.0], n_packets=12)
        assert points[1].eavesdropper_ber > points[0].eavesdropper_ber

    def test_ber_by_location_all_near_half(self):
        lab = PassiveLab(seed=6)
        out = lab.ber_by_location(n_packets=6, location_indices=(1, 9, 18))
        for ber in out.values():
            assert ber > 0.4


class TestBatchedLab:
    def test_batch_shapes_and_types(self):
        lab = PassiveLab(seed=10)
        batch = lab.run_batch(20.0, n_packets=8)
        assert batch.n_packets == 8
        assert batch.eavesdropper_ber.shape == (8,)
        assert batch.shield_bit_errors.shape == (8,)
        assert batch.shield_packet_lost.dtype == bool
        trials = batch.trials()
        assert len(trials) == 8

    def test_batch_statistics_match_operating_point(self):
        lab = PassiveLab(seed=11)
        batch = lab.run_batch(20.0, n_packets=30)
        assert batch.mean_eavesdropper_ber() > 0.4
        assert batch.shield_loss_rate() < 0.2

    def test_batch_no_jamming_reads_everything(self):
        lab = PassiveLab(seed=12)
        batch = lab.run_batch(-40.0, n_packets=6)
        assert batch.mean_eavesdropper_ber() < 0.01

    def test_correlation_and_sample_paths_agree(self):
        """The sufficient-statistic fast path and the sample-level batch
        must describe the same experiment."""
        margins = {}
        for name, force_samples in (("corr", False), ("samples", True)):
            lab = PassiveLab(seed=13)
            powers = lab._link_powers(20.0, 1)
            bits = lab.telemetry_packet_bits_batch(60)
            if force_samples:
                from repro.adversary.strategies import TreatJammingAsNoise

                batch = lab._run_batch_samples(
                    bits, powers, TreatJammingAsNoise(), lab.jammer, True
                )
            else:
                batch = lab._run_batch_correlations(
                    bits, powers, lab.jammer, True, True, True
                )
            margins[name] = batch.mean_eavesdropper_ber()
        assert margins["corr"] == pytest.approx(margins["samples"], abs=0.05)

    def test_score_flags_skip_sides(self):
        lab = PassiveLab(seed=14)
        eve_only = lab.run_batch(20.0, n_packets=4, score_shield=False)
        assert eve_only.shield_bit_errors is None
        assert eve_only.eavesdropper_ber is not None
        with pytest.raises(ValueError):
            eve_only.shield_loss_rate()
        shield_only = lab.run_batch(20.0, n_packets=4, score_eavesdropper=False)
        assert shield_only.eavesdropper_ber is None
        with pytest.raises(ValueError):
            shield_only.mean_eavesdropper_ber()
        with pytest.raises(ValueError):
            lab.run_batch(
                20.0, n_packets=4, score_shield=False, score_eavesdropper=False
            )

    def test_nondefault_strategy_uses_sample_path(self):
        from repro.adversary.strategies import FilterBankStrategy

        lab = PassiveLab(seed=15)
        assert not lab._correlation_path_ok(FilterBankStrategy(), lab.jammer)
        batch = lab.run_batch(0.0, n_packets=3, strategy=FilterBankStrategy())
        assert batch.n_packets == 3

    def test_strategy_subclass_preprocess_is_honored(self):
        """A TreatJammingAsNoise subclass overriding preprocess() must not
        be silently skipped by the batch fast path."""
        from repro.adversary.strategies import TreatJammingAsNoise
        from repro.phy.signal import Waveform as _Waveform

        class Nulling(TreatJammingAsNoise):
            def preprocess(self, waveform, config):
                return _Waveform(
                    np.zeros_like(waveform.samples), waveform.sample_rate
                )

        lab = PassiveLab(seed=18)
        batch = lab.run_batch(
            -40.0, n_packets=5, strategy=Nulling(), score_shield=False
        )
        # A nulled waveform decodes to all zeros, so the BER equals the
        # ones-density of the packet (~8%); an honored no-op decode at
        # -40 dB jamming would be < 1% (see
        # test_batch_no_jamming_reads_everything).
        assert batch.mean_eavesdropper_ber() > 0.05

    def test_batch_is_deterministic_per_seed(self):
        a = PassiveLab(seed=16).run_batch(20.0, n_packets=5)
        b = PassiveLab(seed=16).run_batch(20.0, n_packets=5)
        assert np.array_equal(a.eavesdropper_ber, b.eavesdropper_ber)
        assert np.array_equal(a.shield_bit_errors, b.shield_bit_errors)

    def test_run_trial_is_batch_of_one(self):
        lab = PassiveLab(seed=17)
        trial = lab.run_trial(20.0)
        assert 0.0 <= trial.eavesdropper_ber <= 1.0
        assert trial.shield_packet_lost == (trial.shield_bit_errors > 0)


class TestSweepObserverToggle:
    def test_observer_disabled_testbed_still_attacks(self):
        bed = AttackTestbed(
            location_index=1, shield_present=False, seed=3, observer_enabled=False
        )
        assert bed.observer is None
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.imd_responded

    def test_observer_default_present(self):
        bed = AttackTestbed(location_index=1, seed=3)
        assert bed.observer is not None

    def test_seed_sequence_accepted(self):
        import numpy as _np

        ss = _np.random.SeedSequence(42, spawn_key=(1, 0))
        bed_a = AttackTestbed(location_index=1, shield_present=False, seed=ss)
        out_a = [bed_a.attack_once(bed_a.interrogate_packet()) for _ in range(3)]
        ss2 = _np.random.SeedSequence(42, spawn_key=(1, 0))
        bed_b = AttackTestbed(location_index=1, shield_present=False, seed=ss2)
        out_b = [bed_b.attack_once(bed_b.interrogate_packet()) for _ in range(3)]
        assert out_a == out_b
