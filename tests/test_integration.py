"""Cross-module integration tests: coexistence, wideband defence, relay.

These exercise the end-to-end stories the paper tells: the shield leaves
legitimate users of the band alone (S11), defends across all ten MICS
channels against hopping adversaries (S7(c)), and carries the full
encrypted programmer <-> shield <-> IMD exchange (S4).
"""

import numpy as np
import pytest

from repro.adversary.active import CommandInjector
from repro.core.relay import ProgrammerLink, ShieldRelay
from repro.crypto.pairing import OutOfBandPairing
from repro.experiments.testbed import AttackTestbed, Placement
from repro.phy.gmsk import GMSKConfig, GMSKModulator
from repro.protocol.commands import CommandType
from repro.protocol.crc import bytes_to_bits
from repro.sim.radio import RadioDevice


class CrossTrafficSource(RadioDevice):
    """A meteorological-style transmitter: GMSK frames not addressed to
    any IMD (the Vaisala radiosonde stand-in of S11)."""

    def __init__(self, simulator, channel=0, name="radiosonde"):
        super().__init__(name, simulator, {channel})
        self.channel = channel
        self.modulator = GMSKModulator(GMSKConfig())

    def send_frame(self, payload: bytes):
        air = self._require_air()
        bits = bytes_to_bits(payload)
        return air.transmit(
            source=self.name,
            channel=self.channel,
            tx_power_dbm=-16.0,
            bit_rate=self.modulator.config.bit_rate,
            bits=bits,
            kind="packet",
            meta={"role": "cross-traffic"},
        )


class TestCoexistence:
    """Table 2: the shield jams what targets its IMD, nothing else."""

    def _bed_with_crosstraffic(self, seed=0):
        bed = AttackTestbed(location_index=5, shield_present=True, seed=seed)
        source = CrossTrafficSource(bed.simulator)
        bed.links.place(
            Placement("radiosonde", location=bed.budget.geometry.location(7))
        )
        bed.air.register(source)
        return bed, source

    def test_cross_traffic_never_jammed(self, rng):
        bed, source = self._bed_with_crosstraffic()
        for i in range(20):
            source.send_frame(bytes(rng.integers(0, 256, size=30)))
            bed.simulator.run(until=bed.simulator.now + 0.05)
        jams = bed.air.transmissions_by("shield", kind="jam")
        assert jams == []

    def test_imd_traffic_always_jammed_alongside_cross_traffic(self, rng):
        """The paper alternates cross-traffic and IMD-addressed packets;
        the shield must jam 100% of the latter and 0% of the former."""
        bed, source = self._bed_with_crosstraffic(seed=3)
        jammed_attacks = 0
        n = 10
        for i in range(n):
            source.send_frame(bytes(rng.integers(0, 256, size=30)))
            bed.simulator.run(until=bed.simulator.now + 0.05)
            outcome = bed.attack_once(bed.interrogate_packet())
            jammed_attacks += outcome.shield_jammed
        assert jammed_attacks == n
        # Every jam the shield ever produced was triggered by an attack.
        jams = bed.air.transmissions_by("shield", kind="jam")
        active_jams = [j for j in jams if j.meta.get("reason") == "active"]
        assert len(active_jams) == n

    def test_turnaround_stats_match_table2(self):
        """Table 2: 270 +/- 23 us software turn-around."""
        bed = AttackTestbed(location_index=5, shield_present=True, seed=8)
        for _ in range(40):
            bed.attack_once(bed.interrogate_packet())
        samples = np.asarray(bed.shield.turnaround_samples_s)
        assert samples.size == 40
        assert abs(samples.mean() - 270e-6) < 25e-6
        assert 5e-6 < samples.std() < 60e-6


class TestWidebandDefence:
    """S7(c): the shield watches all ten channels simultaneously."""

    def test_attack_on_any_channel_is_jammed(self):
        bed = AttackTestbed(location_index=3, shield_present=True, seed=11)
        for channel in (1, 4, 9):
            attacker = CommandInjector(
                bed.simulator,
                channel=channel,
                tx_power_dbm=-16.0,
                codec=bed.codec,
                name=f"hopper-{channel}",
            )
            bed.links.place(
                Placement(
                    f"hopper-{channel}", location=bed.budget.geometry.location(3)
                )
            )
            bed.air.register(attacker)
            attacker.send_packet(bed.interrogate_packet())
        bed.simulator.run(until=0.1)
        jammed_channels = {
            j.channel for j in bed.air.transmissions_by("shield", kind="jam")
        }
        assert jammed_channels == {1, 4, 9}

    def test_simultaneous_multichannel_attack(self):
        """An adversary transmitting on several channels at once to
        confuse the shield still gets jammed on each."""
        bed = AttackTestbed(location_index=2, shield_present=True, seed=12)
        attackers = []
        for channel in (2, 3):
            a = CommandInjector(
                bed.simulator,
                channel=channel,
                tx_power_dbm=-16.0,
                codec=bed.codec,
                name=f"multi-{channel}",
            )
            bed.links.place(
                Placement(f"multi-{channel}", location=bed.budget.geometry.location(2))
            )
            bed.air.register(a)
            attackers.append(a)
        for a in attackers:
            a.send_packet(bed.interrogate_packet())
        bed.simulator.run(until=0.1)
        jammed = {j.channel for j in bed.air.transmissions_by("shield", kind="jam")}
        assert jammed == {2, 3}


class TestEncryptedRelayEndToEnd:
    """S4's full path: pairing -> encrypted command -> air -> IMD ->
    air -> decode under jamming -> encrypted reply."""

    def test_full_round_trip(self, rng):
        pairing = OutOfBandPairing(b"shield-necklace-7")
        code = pairing.generate_code(rng)
        secret = pairing.derive_secret(code)

        bed = AttackTestbed(
            location_index=1, shield_present=True, jam_imd_replies=True, seed=21
        )
        bed.shield.relay = ShieldRelay(secret, bed.codec)
        programmer = ProgrammerLink(secret, bed.codec)

        from repro.protocol.packets import Packet

        command = Packet(
            bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01"
        )
        wire = programmer.seal_command(command)
        bed.shield.receive_encrypted_command(wire)
        bed.simulator.run(until=0.1)

        # The IMD answered; the shield decoded it through its own jam and
        # sealed it for the programmer.
        assert bed.imd.transmissions == 1
        assert len(bed.shield.sealed_outbox) == 1
        reply = programmer.open_reply(bed.shield.sealed_outbox[0])
        assert reply.opcode is CommandType.TELEMETRY

        # Meanwhile the adversary's copy of the reply was jammed garbage.
        reply_tx = bed.air.transmissions_by("imd")[0]
        reception = bed.air.receive(reply_tx, "adversary")
        assert reception.bit_flips / reply_tx.n_bits > 0.25

    def test_tampered_relay_command_never_reaches_air(self, rng):
        secret = OutOfBandPairing(b"s7").derive_secret("123456")
        bed = AttackTestbed(
            location_index=1, shield_present=True, jam_imd_replies=True, seed=22
        )
        bed.shield.relay = ShieldRelay(secret, bed.codec)
        programmer = ProgrammerLink(secret, bed.codec)
        from repro.crypto.aead import AuthenticationError
        from repro.protocol.packets import Packet

        wire = bytearray(
            programmer.seal_command(
                Packet(bed.imd.serial, CommandType.SET_THERAPY, 1, bytes(6))
            )
        )
        wire[12] ^= 0xFF
        with pytest.raises(AuthenticationError):
            bed.shield.receive_encrypted_command(bytes(wire))
        assert bed.air.transmissions_by("shield") == []


class TestBatteryDepletionAccounting:
    def test_unshielded_attack_drains_battery(self):
        bed = AttackTestbed(location_index=2, shield_present=False, seed=30)
        bed.run_trials(20, command="interrogate")
        assert bed.imd.transmissions == 20
        assert bed.imd.battery_spent_j > 0

    def test_shield_prevents_battery_drain(self):
        bed = AttackTestbed(location_index=2, shield_present=True, seed=30)
        bed.run_trials(20, command="interrogate")
        assert bed.imd.transmissions == 0
        assert bed.imd.battery_spent_j == 0.0
