"""Tests for the accel kernel dispatch registry."""

import numpy as np
import pytest

from repro import accel
from repro.accel import registry


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate backend selection: no env leakage, no forced override."""
    monkeypatch.delenv(accel.ACCEL_ENV, raising=False)
    monkeypatch.setattr(registry, "_FORCED", None)


class TestResolveBackend:
    def test_auto_degrades_to_numpy_without_numba(self):
        if accel.numba_available():
            pytest.skip("numba installed; degradation leg not applicable")
        assert accel.resolve_backend() == "numpy"
        assert accel.resolve_backend("auto") == "numpy"

    def test_auto_picks_numba_when_available(self):
        if not accel.numba_available():
            pytest.skip("numba not installed")
        assert accel.resolve_backend("auto") == "numba"

    def test_explicit_numpy_always_works(self):
        assert accel.resolve_backend("numpy") == "numpy"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "numpy")
        assert accel.resolve_backend() == "numpy"

    def test_env_numba_without_dependency_errors(self, monkeypatch):
        if accel.numba_available():
            pytest.skip("numba installed; missing-dependency leg n/a")
        monkeypatch.setenv(accel.ACCEL_ENV, "numba")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            accel.resolve_backend()

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "numba")
        # The env would error (no numba) or pick numba; the explicit
        # argument must win either way.
        assert accel.resolve_backend("numpy") == "numpy"

    def test_forced_beats_env(self, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "numba")
        accel.set_backend("numpy")
        assert accel.resolve_backend() == "numpy"

    def test_unknown_choice_rejected(self):
        with pytest.raises(ValueError, match="unknown accel backend"):
            accel.resolve_backend("cython")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "gpu")
        with pytest.raises(ValueError, match="unknown accel backend"):
            accel.resolve_backend()

    def test_blank_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "   ")
        assert accel.resolve_backend() in accel.BACKENDS

    def test_explicit_choice_is_normalized_like_env(self):
        """Regression: ``backend=" NUMPY "`` must equal REPRO_ACCEL=NUMPY."""
        assert accel.resolve_backend(" NUMPY ") == "numpy"
        assert accel.resolve_backend(" AUTO ") in accel.BACKENDS

    def test_blank_explicit_choice_means_auto(self):
        assert accel.resolve_backend("  ") in accel.BACKENDS


class TestSetBackend:
    def test_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown accel backend"):
            accel.set_backend("fortran")

    def test_numba_without_dependency_errors_at_set_time(self):
        if accel.numba_available():
            pytest.skip("numba installed; missing-dependency leg n/a")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            accel.set_backend("numba")

    def test_none_clears_override(self, monkeypatch):
        accel.set_backend("numpy")
        accel.set_backend(None)
        monkeypatch.setenv(accel.ACCEL_ENV, "numpy")
        assert accel.resolve_backend() == "numpy"

    def test_case_and_whitespace_normalised(self):
        accel.set_backend("  NumPy ")
        assert accel.resolve_backend() == "numpy"


class TestGetKernel:
    def test_unknown_kernel_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            accel.get_kernel("warp_drive")

    def test_all_hot_kernels_registered(self):
        names = accel.kernel_names()
        for expected in (
            "jam_tone_colour",
            "fsk_coherent_bits",
            "ecg_wave_accumulate",
            "hr_unbiased_autocorr",
            "beat_refractory_suppress",
        ):
            assert expected in names

    def test_numpy_backend_returns_reference(self):
        from repro.accel import reference

        fn = accel.get_kernel("hr_unbiased_autocorr", backend="numpy")
        assert fn is reference.hr_unbiased_autocorr

    def test_partial_overlay_falls_back_to_numpy(self, monkeypatch):
        """A backend missing one kernel dispatches that name to numpy."""
        sentinel_registry = {
            "only_numpy": {"numpy": lambda: "ref"},
        }
        monkeypatch.setattr(registry, "_REGISTRY", sentinel_registry)
        monkeypatch.setattr(registry, "_NUMBA_AVAILABLE", True)
        assert accel.get_kernel("only_numpy", backend="numba")() == "ref"

    def test_dispatch_is_callable_and_correct(self):
        fn = accel.get_kernel("beat_refractory_suppress")
        out = fn(np.array([10, 100, 12], dtype=np.int64), 5.0)
        assert out.tolist() == [10, 100]


class TestAvailability:
    def test_available_backends_always_includes_numpy(self):
        assert "numpy" in accel.available_backends()

    def test_choices_cover_backends(self):
        assert set(accel.BACKENDS) < set(accel.CHOICES)
        assert "auto" in accel.CHOICES

    def test_register_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            accel.register("some_kernel", "tpu")
