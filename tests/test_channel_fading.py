"""Tests for fading and shadowing draws."""

import numpy as np
import pytest

from repro.channel.fading import NO_FADING, FadingModel, rayleigh_gain, rician_gain


class TestGains:
    def test_rayleigh_unit_mean_power(self, rng):
        powers = [abs(rayleigh_gain(rng)) ** 2 for _ in range(20_000)]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_rician_unit_mean_power(self, rng):
        powers = [abs(rician_gain(10.0, rng)) ** 2 for _ in range(20_000)]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_rician_less_variable_than_rayleigh(self, rng):
        ray = [abs(rayleigh_gain(rng)) ** 2 for _ in range(5000)]
        ric = [abs(rician_gain(12.0, rng)) ** 2 for _ in range(5000)]
        assert np.std(ric) < np.std(ray)

    def test_infinite_k_is_deterministic(self, rng):
        assert rician_gain(float("inf"), rng) == 1.0 + 0.0j


class TestFadingModel:
    def test_mean_gain_near_zero_db(self, rng):
        model = FadingModel(shadowing_sigma_db=2.0)
        draws = [model.gain_db(True, rng) for _ in range(20_000)]
        # Mean linear power is 1, so mean dB sits slightly below 0
        # (Jensen); it must be within a couple of dB of 0.
        assert abs(np.mean(draws)) < 3.0

    def test_nlos_spread_exceeds_los(self, rng):
        model = FadingModel(shadowing_sigma_db=1.0)
        los = [model.gain_db(True, rng) for _ in range(5000)]
        nlos = [model.gain_db(False, rng) for _ in range(5000)]
        assert np.std(nlos) > np.std(los)

    def test_disabled_model_is_identity(self, rng):
        assert NO_FADING.gain_db(True, rng) == 0.0
        assert NO_FADING.gain_db(False, rng) == 0.0
        assert NO_FADING.complex_gain(False, rng) == 1.0 + 0.0j

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            FadingModel(shadowing_sigma_db=-1.0)

    def test_complex_gain_types(self, rng):
        model = FadingModel()
        assert isinstance(model.complex_gain(True, rng), complex)
        assert isinstance(model.complex_gain(False, rng), complex)
