"""The live campaign view: ``scenario_status`` and ``python -m repro top``.

Fast tests drive the pure status function with an injected clock (no
sleeping); the slow acceptance test at the bottom runs a real 2-worker
distributed campaign, SIGKILLs one worker mid-unit, and requires
``repro top`` to report the orphaned lease as stalled *before* a
surviving worker re-claims it.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import registry
from repro.campaigns.cache import ResultCache
from repro.campaigns.cli import main
from repro.campaigns.queue import WorkQueue
from repro.campaigns.runner import CampaignRunner, plan_scenario_units
from repro.obs.top import (
    DEFAULT_IDLE_AFTER_S,
    TERMINAL_PHASES,
    render_status,
    scenario_status,
)


def _scenario(**changes):
    base = registry.get("fleet-attack-prevalence").override(
        n_patients=20, n_trials=1, chunk_size=5
    )
    return base.override(**changes) if changes else base


class _Clock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestScenarioStatus:
    def test_fresh_campaign_filesystem(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path)
        status = scenario_status(cache, scenario)
        assert status["scenario"] == scenario.name
        assert status["total_units"] == 4
        assert status["cached_units"] == 0
        assert not status["complete"]
        # The filesystem backend has no queue to report.
        assert status["queue"] is None
        assert status["workers"] == []

    def test_complete_campaign(self, tmp_path):
        scenario = _scenario()
        CampaignRunner(
            scenario, cache_dir=tmp_path, progress=False
        ).run()
        status = scenario_status(ResultCache(tmp_path), scenario)
        assert status["cached_units"] == status["total_units"] == 4
        assert status["complete"]

    def test_stalled_lease_is_flagged(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        clock = _Clock()
        queue = WorkQueue(cache.store, scenario.scenario_hash(), clock=clock)
        queue.enqueue(plan_scenario_units(scenario))
        claim = queue.claim("doomed", lease_s=60.0)
        live = scenario_status(cache, scenario, clock=clock)
        assert live["queue"] == {"queued": 4, "leased": 1}
        assert live["stalled_leases"] == []
        # The holder dies: renewals stop, the clock passes the expiry,
        # and nothing has reaped the lease row yet.
        clock.advance(61.0)
        stalled = scenario_status(cache, scenario, clock=clock)
        assert stalled["queue"]["leased"] == 0
        assert [s["worker_id"] for s in stalled["stalled_leases"]] == [
            "doomed"
        ]
        assert stalled["stalled_leases"][0]["key"] == claim.key
        lines = "\n".join(render_status(stalled))
        assert "STALLED" in lines
        assert "doomed" in lines

    def test_idle_worker_is_flagged_by_snapshot_age(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        clock = _Clock()
        scenario_hash = scenario.scenario_hash()
        cache.store.progress_publish(
            scenario_hash, "busy",
            {"role": "worker", "phase": "evaluate", "done_units": 1},
            clock() - 1.0,
        )
        cache.store.progress_publish(
            scenario_hash, "quiet",
            {"role": "worker", "phase": "evaluate", "done_units": 2},
            clock() - (DEFAULT_IDLE_AFTER_S + 5.0),
        )
        cache.store.progress_publish(
            scenario_hash, "finished",
            {"role": "worker", "phase": "done", "done_units": 3},
            clock() - 500.0,
        )
        status = scenario_status(cache, scenario, clock=clock)
        flags = {w["source"]: (w["idle"], w["terminal"])
                 for w in status["workers"]}
        assert flags == {
            "busy": (False, False),
            "quiet": (True, False),
            # A terminal phase is never idle, however old the snapshot.
            "finished": (False, True),
        }
        assert status["idle_workers"] == ["quiet"]
        lines = "\n".join(render_status(status))
        assert "IDLE worker quiet" in lines
        assert "IDLE worker finished" not in lines

    def test_idle_phase_is_flagged_even_when_fresh(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        clock = _Clock()
        cache.store.progress_publish(
            scenario.scenario_hash(), "waiting",
            {"role": "worker", "phase": "idle", "done_units": 0},
            clock(),
        )
        status = scenario_status(cache, scenario, clock=clock)
        assert status["idle_workers"] == ["waiting"]

    def test_terminal_phases_cover_every_exit_path(self):
        # Every phase the runner, coordinator, and worker finish with
        # must be terminal, or top would flag finished participants as
        # idle forever.
        assert {
            "done", "interrupted", "idle-timeout", "timeout",
            "reduce", "exit",
        } <= set(TERMINAL_PHASES)


class TestTopCli:
    _OVERRIDES = ("--trials", "2", "--locations", "1")

    def _prime(self, tmp_path):
        assert main([
            "run", "attack-success-shielded", *self._OVERRIDES,
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
            "--format", "json",
        ]) == 0

    def test_once_prints_one_snapshot(self, capsys, tmp_path):
        self._prime(tmp_path)
        capsys.readouterr()
        assert main([
            "top", "attack-success-shielded", *self._OVERRIDES,
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
            "--once",
        ]) == 0
        out = capsys.readouterr().out
        assert "COMPLETE" in out
        assert "units 1/1" in out
        assert "queue:" in out

    def test_json_mode_emits_parseable_status(self, capsys, tmp_path):
        self._prime(tmp_path)
        capsys.readouterr()
        assert main([
            "top", "attack-success-shielded", *self._OVERRIDES,
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
            "--once", "--json",
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert status["total_units"] == 1

    def test_polling_exits_when_campaign_completes(self, capsys, tmp_path):
        self._prime(tmp_path)
        capsys.readouterr()
        # Not --once: the loop must observe completion and stop on its
        # own (otherwise this test would hang).
        assert main([
            "top", "attack-success-shielded", *self._OVERRIDES,
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
            "--interval", "0.05",
        ]) == 0

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(SystemExit, match="interval"):
            main([
                "top", "attack-success-shielded",
                "--cache-dir", str(tmp_path), "--interval", "0",
            ])

    def test_unknown_scenario_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no-such-scenario"):
            main(["top", "no-such-scenario", "--cache-dir", str(tmp_path)])


# ----------------------------------------------------------------------
# Slow acceptance: top watches a real crash-prone distributed campaign
# ----------------------------------------------------------------------

_REPO = Path(__file__).resolve().parent.parent

_DIST_OVERRIDES = [
    "fleet-attack-prevalence",
    "--patients", "20000", "--trials", "1", "--chunk-size", "1000",
    "--cache-backend", "sqlite",
]


def _spawn(verb: str, cache_dir: Path, *extra: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", verb, *_DIST_OVERRIDES,
         "--cache-dir", str(cache_dir), *extra],
        cwd=_REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _top_once(cache_dir: Path, *extra: str) -> dict:
    proc = _spawn("top", cache_dir, "--once", "--json", *extra)
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    return json.loads(out)


def _query_one(cache_dir: Path, sql: str, *params) -> int:
    path = cache_dir / "results.sqlite"
    if not path.exists():
        return 0
    try:
        with sqlite3.connect(path, timeout=5.0) as conn:
            return conn.execute(sql, params).fetchone()[0]
    except sqlite3.Error:
        return 0


@pytest.mark.slow
class TestTopWatchesACrashingCampaign:
    def test_stalled_lease_reported_before_requeue(self, tmp_path):
        cache_dir = tmp_path / "dist"

        # 1. A live 2-worker campaign: the eventual victim plus a
        #    helper that retires after two units (so the later stalled
        #    window has no claimant racing the observation).
        victim = _spawn("worker", cache_dir, "--worker-id", "doomed",
                        "--lease", "5", "--poll", "0.05",
                        "--idle-timeout", "300")
        helper = _spawn("worker", cache_dir, "--worker-id", "helper",
                        "--lease", "10", "--poll", "0.05",
                        "--idle-timeout", "300", "--max-units", "2")

        # Wait until the campaign is demonstrably mid-flight with the
        # victim holding a lease.
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail(
                    "victim exited early: " + victim.communicate()[1]
                )
            held = _query_one(
                cache_dir,
                "SELECT COUNT(*) FROM leases WHERE worker_id = ?",
                "doomed",
            )
            cached = _query_one(cache_dir, "SELECT COUNT(*) FROM units")
            if held >= 1 and cached >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("campaign never reached a mid-flight state")

        # 2. While both workers live, top sees their progress snapshots.
        live = _top_once(cache_dir)
        assert not live["complete"]
        assert {w["source"] for w in live["workers"]} >= {"doomed"}

        helper.communicate(timeout=300)
        assert helper.returncode == 0

        # 3. SIGKILL the victim mid-unit: no lease release, no cleanup.
        victim.kill()
        victim.wait(timeout=60)
        assert victim.returncode == -signal.SIGKILL

        # 4. With no claimant left, the orphan lease expires unreaped;
        #    top must flag it as stalled before anyone re-claims it.
        deadline = time.monotonic() + 120.0
        stalled = []
        while time.monotonic() < deadline:
            status = _top_once(cache_dir)
            stalled = status["stalled_leases"]
            if stalled:
                break
            time.sleep(0.5)
        assert [s["worker_id"] for s in stalled] == ["doomed"]
        assert _query_one(cache_dir, "SELECT COUNT(*) FROM leases") >= 1

        # 5. A survivor re-claims the stalled unit and, with the
        #    coordinator, finishes the campaign bit-identically to the
        #    planned unit count.
        survivor = _spawn("worker", cache_dir, "--worker-id", "survivor",
                          "--lease", "10", "--poll", "0.05",
                          "--idle-timeout", "300")
        coordinator = _spawn("run", cache_dir, "--distributed",
                             "--wait-timeout", "600", "--format", "json")
        coord_out, coord_err = coordinator.communicate(timeout=900)
        assert coordinator.returncode == 0, coord_err
        out, err = survivor.communicate(timeout=300)
        assert survivor.returncode == 0, err
        assert json.loads(coord_out)["units"]["total"] == 20

        final = _top_once(cache_dir)
        assert final["complete"]
        assert final["stalled_leases"] == []
        assert final["queue"] == {"queued": 0, "leased": 0}
