"""Tests for the synthetic ECG generator: shapes, rhythms, batch parity."""

import numpy as np
import pytest

from repro.physio.ecg import (
    ECGConfig,
    ECGGenerator,
    RHYTHM_CLASSES,
    RHYTHM_RATES_BPM,
)


class TestConfigValidation:
    def test_rejects_unknown_rhythm(self):
        with pytest.raises(ValueError, match="unknown rhythm"):
            ECGConfig(rhythm="flutter")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ECGConfig(duration_s=0.0)

    def test_rejects_implausible_rate(self):
        with pytest.raises(ValueError):
            ECGConfig(heart_rate_bpm=500.0)

    def test_n_samples(self):
        config = ECGConfig(sample_rate_hz=120.0, duration_s=6.4)
        assert config.n_samples == 768


class TestBatchShape:
    def test_shapes_and_types(self):
        batch = ECGGenerator().sample_batch(3, seed=1)
        n = ECGConfig().n_samples
        assert batch.samples.shape == (3, n)
        assert batch.beat_mask.shape == (3, n)
        assert batch.beat_mask.dtype == bool
        assert batch.heart_rate_bpm.shape == (3,)
        assert batch.rhythms == ("normal",) * 3

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            ECGGenerator().sample_batch(0, seed=1)

    def test_rejects_rhythm_count_mismatch(self):
        with pytest.raises(ValueError, match="rhythms"):
            ECGGenerator().sample_batch(3, seed=1, rhythms=("normal",))

    def test_rejects_unknown_rhythm_in_batch(self):
        with pytest.raises(ValueError, match="unknown rhythm"):
            ECGGenerator().sample_batch(1, seed=1, rhythms=("sinus",))

    def test_beat_times_match_mask(self):
        batch = ECGGenerator().sample_batch(2, seed=3)
        for i in range(2):
            times = batch.beat_times(i)
            assert len(times) == int(batch.beat_mask[i].sum())
            assert np.all(np.diff(times) > 0)


class TestBatchScalarParity:
    """sample_batch(n)[i] must equal sample_record on the i-th child stream."""

    @pytest.mark.parametrize("rhythm", RHYTHM_CLASSES)
    def test_batch_rows_match_scalar_reference(self, rhythm):
        root = np.random.SeedSequence(42)
        children = root.spawn(4)
        batch = ECGGenerator().sample_batch(
            4, seed=np.random.SeedSequence(42), rhythms=(rhythm,) * 4
        )
        for i, child in enumerate(children):
            scalar = ECGGenerator().sample_record(child, rhythm=rhythm)
            np.testing.assert_array_equal(scalar.samples[0], batch.samples[i])
            np.testing.assert_array_equal(
                scalar.beat_mask[0], batch.beat_mask[i]
            )
            assert scalar.heart_rate_bpm[0] == batch.heart_rate_bpm[i]

    def test_same_seed_same_batch(self):
        a = ECGGenerator().sample_batch(3, seed=9)
        b = ECGGenerator().sample_batch(3, seed=9)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.beat_mask, b.beat_mask)

    def test_different_seeds_differ(self):
        a = ECGGenerator().sample_batch(3, seed=9)
        b = ECGGenerator().sample_batch(3, seed=10)
        assert not np.array_equal(a.samples, b.samples)


class TestRhythmProperties:
    def _rr_stats(self, rhythm, n=20, seed=5):
        config = ECGConfig(duration_s=10.0)
        batch = ECGGenerator(config).sample_batch(
            n, seed=seed, rhythms=(rhythm,) * n
        )
        cvs, rates = [], []
        for i in range(n):
            rr = np.diff(batch.beat_times(i))
            cvs.append(np.std(rr) / np.mean(rr))
            rates.append(batch.heart_rate_bpm[i])
        return float(np.mean(cvs)), float(np.mean(rates))

    @pytest.mark.parametrize("rhythm", RHYTHM_CLASSES)
    def test_mean_rate_tracks_rhythm_default(self, rhythm):
        _, rate = self._rr_stats(rhythm)
        assert rate == pytest.approx(RHYTHM_RATES_BPM[rhythm], rel=0.12)

    def test_afib_is_far_more_irregular_than_sinus(self):
        cv_afib, _ = self._rr_stats("afib")
        cv_normal, _ = self._rr_stats("normal")
        assert cv_afib > 0.15
        assert cv_normal < 0.08

    def test_afib_has_no_p_wave(self):
        """The P-wave bump before each R peak vanishes for AF records."""
        config = ECGConfig(noise_std=0.0, wander_amplitude=0.0)
        gen = ECGGenerator(config)
        fs = config.sample_rate_hz

        def p_window_level(rhythm):
            batch = gen.sample_batch(6, seed=11, rhythms=(rhythm,) * 6)
            levels = []
            for i in range(6):
                for t in batch.beat_times(i):
                    idx = int(round((t - 0.16) * fs))
                    if 2 <= idx < config.n_samples - 2:
                        levels.append(batch.samples[i][idx])
            return float(np.median(levels))

        assert p_window_level("normal") > 0.08
        assert abs(p_window_level("afib")) < 0.05

    def test_r_peaks_dominate(self):
        config = ECGConfig(noise_std=0.0, wander_amplitude=0.0)
        batch = ECGGenerator(config).sample_batch(2, seed=2)
        for i in range(2):
            peak_values = batch.samples[i][batch.beat_mask[i]]
            assert np.all(peak_values > 0.7)

    def test_custom_rate_overrides_default(self):
        config = ECGConfig(heart_rate_bpm=60.0, duration_s=10.0)
        batch = ECGGenerator(config).sample_batch(8, seed=4)
        assert float(np.mean(batch.heart_rate_bpm)) == pytest.approx(60.0, rel=0.08)


class TestWithDuration:
    def test_with_duration_resizes_records(self):
        gen = ECGGenerator().with_duration(3.2)
        assert gen.config.duration_s == 3.2
        batch = gen.sample_batch(1, seed=0)
        assert batch.samples.shape[1] == int(3.2 * 120)
