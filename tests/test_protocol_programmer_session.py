"""Tests for the programmer model and session state machine."""

import pytest

from repro.protocol.commands import CommandType, TherapySettings
from repro.protocol.imd import IMDevice
from repro.protocol.packets import Packet
from repro.protocol.programmer import Programmer
from repro.protocol.session import Session, SessionState


@pytest.fixture
def programmer(serial) -> Programmer:
    return Programmer(target_serial=serial)


class TestProgrammer:
    def test_fcc_power_enforced(self, serial):
        with pytest.raises(ValueError):
            Programmer(target_serial=serial, tx_power_dbm=-10.0)

    def test_command_builders_target_imd(self, programmer, serial):
        for packet in (
            programmer.open_session(),
            programmer.interrogate(),
            programmer.set_therapy(TherapySettings()),
            programmer.close_session(),
        ):
            assert packet.serial == serial

    def test_sequence_increments(self, programmer):
        a = programmer.interrogate()
        b = programmer.interrogate()
        assert b.sequence == (a.sequence + 1) % 256

    def test_lbt_duration_is_10ms(self, programmer):
        assert programmer.listen_before_talk_s() == pytest.approx(0.010)

    def test_full_exchange_with_imd(self, programmer, serial):
        """Programmer command -> IMD reply -> programmer parses it."""
        imd = IMDevice(serial)
        command = programmer.interrogate()
        reply, _ = imd.handle_packet(command)
        parsed = programmer.handle_packet(reply)
        assert parsed is not None
        assert parsed.opcode is CommandType.TELEMETRY
        assert programmer.replies == [reply]

    def test_ignores_other_devices(self, programmer):
        other = bytes(reversed(range(10)))
        stray = Packet(other, CommandType.TELEMETRY, 1, b"x")
        assert programmer.handle_packet(stray) is None

    def test_ignores_commands(self, programmer, serial):
        """Only IMD->programmer opcodes count as replies."""
        echo = Packet(serial, CommandType.INTERROGATE, 1)
        assert programmer.handle_packet(echo) is None

    def test_handle_garbage_bits(self, programmer, rng):
        assert programmer.handle_bits(rng.integers(0, 2, size=200)) is None


class TestSession:
    def test_lifecycle(self):
        s = Session()
        s.start_listening()
        s.activate(channel_index=3)
        assert s.state is SessionState.ACTIVE
        assert s.channel_index == 3
        s.record_command()
        s.record_reply()
        s.close()
        assert s.state is SessionState.CLOSED
        assert s.channel_index is None

    def test_cannot_activate_without_listening(self):
        with pytest.raises(RuntimeError):
            Session().activate(0)

    def test_cannot_listen_while_active(self):
        s = Session()
        s.start_listening()
        s.activate(0)
        with pytest.raises(RuntimeError):
            s.start_listening()

    def test_persistent_interference_abandons_channel(self):
        """S2: pairs leave a channel on persistent interference."""
        s = Session(interference_limit=3)
        s.start_listening()
        s.activate(5)
        assert not s.record_interference()
        assert not s.record_interference()
        assert s.record_interference()
        assert s.state is SessionState.IDLE
        assert s.channel_index is None

    def test_reply_resets_interference_count(self):
        s = Session(interference_limit=2)
        s.start_listening()
        s.activate(1)
        s.record_interference()
        s.record_reply()
        assert not s.record_interference()

    def test_counters(self):
        s = Session()
        s.start_listening()
        s.activate(0)
        s.record_command()
        s.record_command()
        s.record_reply()
        assert s.commands_sent == 2
        assert s.replies_received == 1

    def test_inactive_operations_rejected(self):
        with pytest.raises(RuntimeError):
            Session().record_command()
