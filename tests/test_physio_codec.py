"""Tests for the physiological telemetry codec.

The load-bearing property (hypothesis-pinned): encode -> packetize ->
transmit clean -> decode recovers every window within half a
quantization step, and the beat annotations exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physio.codec import PhysioPayloadSource, WaveformCodec
from repro.protocol.commands import CommandType
from repro.protocol.packets import Packet, PacketCodec


class TestCodecValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WaveformCodec(window_samples=0)

    def test_rejects_degenerate_range(self):
        with pytest.raises(ValueError, match="increasing"):
            WaveformCodec(amplitude_range=(1.0, 1.0))

    def test_payload_size(self):
        codec = WaveformCodec(window_samples=48)
        assert codec.mask_bytes == 6
        assert codec.payload_size == 54

    def test_n_windows_rejects_ragged_records(self):
        with pytest.raises(ValueError, match="multiple"):
            WaveformCodec(window_samples=48).n_windows(100)

    def test_encode_rejects_wrong_shape(self):
        codec = WaveformCodec(window_samples=8)
        with pytest.raises(ValueError):
            codec.encode_batch(np.zeros((2, 7)), np.zeros((2, 7), dtype=bool))

    def test_decode_rejects_wrong_width(self):
        codec = WaveformCodec(window_samples=8)
        with pytest.raises(ValueError):
            codec.decode_batch(np.zeros((1, 3), dtype=np.uint8))


windows = st.integers(0, 10_000).map(
    lambda seed: np.random.default_rng(seed)
)


class TestRoundTrip:
    @given(windows)
    @settings(max_examples=40, deadline=None)
    def test_packetized_round_trip_within_quantization(self, rng):
        """encode -> Packet -> bits -> PacketCodec.decode -> decode == input."""
        codec = WaveformCodec()
        packet_codec = PacketCodec()
        lo, hi = codec.amplitude_range
        samples = rng.uniform(lo, hi, size=codec.window_samples)
        mask = rng.random(codec.window_samples) < 0.1

        payload = codec.encode_window(samples, mask)
        packet = Packet(bytes(range(10)), CommandType.TELEMETRY, 1, payload)
        bits = packet_codec.encode(packet)
        received = packet_codec.decode(bits)  # CRC-checked
        out_samples, out_mask = codec.decode_window(received.payload)

        assert np.max(np.abs(out_samples - samples)) <= (
            codec.quantization_step / 2 + 1e-12
        )
        np.testing.assert_array_equal(out_mask, mask)

    @given(windows)
    @settings(max_examples=20, deadline=None)
    def test_out_of_range_amplitudes_clip(self, rng):
        codec = WaveformCodec()
        lo, hi = codec.amplitude_range
        samples = rng.uniform(lo - 2.0, hi + 2.0, size=codec.window_samples)
        mask = np.zeros(codec.window_samples, dtype=bool)
        out, _ = codec.decode_window(codec.encode_window(samples, mask))
        clipped = np.clip(samples, lo, hi)
        assert np.max(np.abs(out - clipped)) <= codec.quantization_step / 2 + 1e-12

    def test_batch_matches_scalar(self, rng):
        codec = WaveformCodec(window_samples=16)
        lo, hi = codec.amplitude_range
        samples = rng.uniform(lo, hi, size=(5, 16))
        mask = rng.random((5, 16)) < 0.2
        batch = codec.encode_batch(samples, mask)
        for i in range(5):
            assert batch[i].tobytes() == codec.encode_window(samples[i], mask[i])

    def test_encode_record_windows_in_order(self, rng):
        codec = WaveformCodec(window_samples=8)
        record = rng.uniform(-0.4, 1.4, size=24)
        mask = rng.random(24) < 0.2
        payloads = codec.encode_record(record, mask)
        assert payloads.shape == (3, codec.payload_size)
        out, out_mask = codec.decode_batch(payloads)
        assert np.max(np.abs(out.reshape(-1) - record)) <= codec.quantization_step / 2 + 1e-12
        np.testing.assert_array_equal(out_mask.reshape(-1), mask)

    def test_corrupted_packet_fails_crc(self, rng):
        """The legitimate receiver's CRC rejects a flipped payload bit."""
        codec = WaveformCodec()
        packet_codec = PacketCodec()
        samples = rng.uniform(-0.4, 1.4, size=codec.window_samples)
        payload = codec.encode_window(
            samples, np.zeros(codec.window_samples, dtype=bool)
        )
        bits = packet_codec.encode(
            Packet(bytes(range(10)), CommandType.TELEMETRY, 1, payload)
        )
        corrupted = bits.copy()
        corrupted[packet_codec.payload_slice(codec.payload_size).start] ^= 1
        with pytest.raises(Exception):
            packet_codec.decode(corrupted)


class TestPayloadSource:
    def test_serves_in_order_without_consuming_rng(self, rng):
        payloads = np.arange(12, dtype=np.uint8).reshape(3, 4)
        source = PhysioPayloadSource(payloads)
        state_before = rng.bit_generator.state
        assert source.payload_size == 4
        assert source.next_payload(rng) == bytes([0, 1, 2, 3])
        assert source.next_payload(rng) == bytes([4, 5, 6, 7])
        assert source.remaining == 1
        assert rng.bit_generator.state == state_before

    def test_refuses_to_wrap_around(self, rng):
        source = PhysioPayloadSource(np.zeros((1, 4), dtype=np.uint8))
        source.next_payload(rng)
        with pytest.raises(ValueError, match="exhausted"):
            source.next_payload(rng)

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            PhysioPayloadSource(np.zeros((0, 4), dtype=np.uint8))
