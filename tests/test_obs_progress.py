"""Live progress streaming and its hard invariant.

The invariant this file pins: **publishing progress never changes the
numbers**.  A progress-on run's result payloads and cached bytes are
bit-identical to a progress-off run's -- on an attack and a fleet
scenario, in serial, 2-worker pool, and distributed modes -- because
progress is write-only observability layered on the store, never an
input to evaluation.
"""

import hashlib
import json
import sqlite3
from pathlib import Path

import pytest

from repro.campaigns import registry
from repro.campaigns.cache import ResultCache
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.store import FilesystemStore, SQLiteStore
from repro.campaigns.worker import run_worker
from repro.obs.metrics import take_global
from repro.obs.progress import (
    DEFAULT_INTERVAL_S,
    PROGRESS_ENV,
    ProgressPublisher,
    read_progress,
    resolve_progress,
)
from repro.runtime.executor import SweepExecutor


class TestResolveProgress:
    def test_defaults_on(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        assert resolve_progress() is True

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_environment(self, monkeypatch, raw, expected):
        monkeypatch.setenv(PROGRESS_ENV, raw)
        assert resolve_progress() is expected

    def test_flag_beats_environment(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_ENV, "0")
        assert resolve_progress(True) is True
        monkeypatch.setenv(PROGRESS_ENV, "1")
        assert resolve_progress(False) is False

    def test_junk_environment_raises(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_ENV, "sometimes")
        with pytest.raises(ValueError, match=PROGRESS_ENV):
            resolve_progress()


class _FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _RecordingStore:
    """Store stub capturing progress_publish calls."""

    def __init__(self, fail=False):
        self.published: list[tuple[str, str, dict, float]] = []
        self.fail = fail

    def progress_publish(self, scenario_hash, source, payload, now):
        if self.fail:
            raise OSError("store gone")
        self.published.append((scenario_hash, source, payload, now))

    def progress_read(self, scenario_hash):
        return [
            (source, payload, now)
            for _, source, payload, now in self.published
        ]


def _publisher(store, **kwargs):
    clock = kwargs.pop("clock", _FakeClock())
    return ProgressPublisher(
        store, "hash", "w1", total_units=10,
        clock=clock, wall=clock, **kwargs
    ), clock


class TestProgressPublisher:
    def test_snapshot_carries_counts_rate_and_eta(self):
        store = _RecordingStore()
        pub, clock = _publisher(store, role="worker", scenario="demo")
        clock.advance(2.0)
        pub.advance(done=4, computed=3, reused=1, phase="claim")
        snap = store.published[-1][2]
        assert snap["role"] == "worker"
        assert snap["source"] == "w1"
        assert snap["scenario"] == "demo"
        assert snap["total_units"] == 10
        assert snap["done_units"] == 4
        assert snap["computed_units"] == 3
        assert snap["reused_units"] == 1
        assert snap["failed_units"] == 0
        assert snap["phase"] == "claim"
        assert snap["rate_units_per_s"] == pytest.approx(2.0)
        assert snap["eta_s"] == pytest.approx(3.0)

    def test_eta_is_none_before_any_unit(self):
        store = _RecordingStore()
        pub, _ = _publisher(store)
        pub.publish(force=True)
        snap = store.published[-1][2]
        assert snap["rate_units_per_s"] == 0.0
        assert snap["eta_s"] is None

    def test_publishing_is_throttled(self):
        store = _RecordingStore()
        pub, clock = _publisher(store, interval_s=2.0)
        assert pub.publish(force=True)
        assert not pub.publish()  # same instant: throttled
        clock.advance(1.0)
        assert not pub.publish()
        clock.advance(1.5)
        assert pub.publish()
        assert len(store.published) == 2

    def test_finish_forces_a_final_snapshot(self):
        store = _RecordingStore()
        pub, _ = _publisher(store, interval_s=3600.0)
        pub.publish(force=True)
        pub.finish(phase="done")
        assert store.published[-1][2]["phase"] == "done"
        assert len(store.published) == 2

    def test_store_failures_never_raise_and_go_quiet(self):
        store = _RecordingStore(fail=True)
        pub, clock = _publisher(store, interval_s=0.0)
        for _ in range(10):
            clock.advance(1.0)
            assert not pub.publish(force=True)
        take_global()  # drop the error counters this test provoked
        # After the failure cutoff the publisher stops even trying.
        assert pub._failures == 3

    def test_recovery_resets_the_failure_count(self):
        store = _RecordingStore()
        pub, clock = _publisher(store, interval_s=0.0)
        store.fail = True
        pub.publish(force=True)
        pub.publish(force=True)
        store.fail = False
        clock.advance(1.0)
        assert pub.publish(force=True)
        assert pub._failures == 0
        take_global()


class TestStoreProgress:
    @pytest.mark.parametrize("store_cls", [FilesystemStore, SQLiteStore])
    def test_roundtrip_last_write_wins(self, tmp_path, store_cls):
        store = store_cls(tmp_path)
        store.progress_publish("h1", "w1", {"done_units": 1}, 10.0)
        store.progress_publish("h1", "w1", {"done_units": 5}, 20.0)
        store.progress_publish("h1", "w2", {"done_units": 2}, 15.0)
        store.progress_publish("h2", "w1", {"done_units": 9}, 1.0)
        rows = {
            source: (payload, updated)
            for source, payload, updated in store.progress_read("h1")
        }
        assert set(rows) == {"w1", "w2"}
        assert rows["w1"] == ({"done_units": 5}, 20.0)
        assert rows["w2"] == ({"done_units": 2}, 15.0)

    @pytest.mark.parametrize("store_cls", [FilesystemStore, SQLiteStore])
    def test_empty_read_creates_nothing(self, tmp_path, store_cls):
        store = store_cls(tmp_path)
        assert store.progress_read("nothing") == []
        assert not (tmp_path / SQLiteStore.FILENAME).exists()

    def test_filesystem_rows_live_under_runs(self, tmp_path):
        # Deliberate placement: runs/ is excluded from cache digests
        # and namespace scans, so live progress can never perturb
        # bit-identity checks or `cache stats`.
        store = FilesystemStore(tmp_path)
        store.progress_publish("h1", "w/../1", {"done_units": 1}, 5.0)
        files = list((tmp_path / "runs" / ".progress").rglob("*.json"))
        assert len(files) == 1
        # Separators are sanitized away: the row cannot escape its dir.
        assert files[0].parent == tmp_path / "runs" / ".progress" / "h1"
        assert "/" not in files[0].name
        assert store.progress_read("h1")[0][1] == {"done_units": 1}

    def test_filesystem_torn_file_is_skipped(self, tmp_path):
        store = FilesystemStore(tmp_path)
        store.progress_publish("h1", "ok", {"done_units": 1}, 5.0)
        progress_dir = tmp_path / "runs" / ".progress" / "h1"
        (progress_dir / "torn.json").write_text('{"source": "torn', "utf-8")
        rows = store.progress_read("h1")
        assert [source for source, _, _ in rows] == ["ok"]

    def test_read_progress_adds_ages_and_sorts(self, tmp_path):
        store = SQLiteStore(tmp_path)
        store.progress_publish(
            "h1", "w2", {"role": "worker", "done_units": 1}, 90.0
        )
        store.progress_publish(
            "h1", "w1", {"role": "worker", "done_units": 2}, 95.0
        )
        store.progress_publish(
            "h1", "r", {"role": "runner", "done_units": 3}, 99.0
        )
        rows = read_progress(store, "h1", now=100.0)
        assert [(r["role"], r["source"]) for r in rows] == [
            ("runner", "r"), ("worker", "w1"), ("worker", "w2"),
        ]
        assert [r["age_s"] for r in rows] == [1.0, 5.0, 10.0]


class TestExecutorUnitCallback:
    def test_fires_once_per_unit_serial_and_pooled(self):
        for workers in (1, 2):
            executor = SweepExecutor(workers=workers)
            fired = []
            executor.unit_callback = lambda: fired.append(1)
            with executor.pool_session():
                assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert len(fired) == 3

    def test_callback_errors_never_break_the_sweep(self):
        take_global()  # drain counters other tests accumulated
        executor = SweepExecutor(workers=1)

        def boom():
            raise RuntimeError("observer crashed")

        executor.unit_callback = boom
        assert executor.map(_double, [1, 2]) == [2, 4]
        metrics = take_global()
        assert metrics["counters"]["executor.unit_callback_error"] == 2


def _double(x):
    return 2 * x


# ----------------------------------------------------------------------
# The bit-identity invariant
# ----------------------------------------------------------------------


def _attack_scenario():
    return registry.get("attack-success-shielded").override(
        n_trials=2, location_indices=(1, 8)
    )


def _fleet_scenario():
    return registry.get("fleet-privacy-leakage").override(
        n_patients=20, n_trials=2, chunk_size=10
    )


def _cache_digest(root: Path) -> dict[str, str]:
    """Path -> content hash of every cache file except runs/."""
    digest = {}
    for path in sorted(root.rglob("*")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] == "runs":
            continue
        if path.is_file():
            digest[str(relative)] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return digest


def _sqlite_results_digest(root: Path) -> str:
    """Hash of the sqlite store's *result* content (units, scenarios).

    The raw database file is not byte-comparable across runs -- queue
    and progress bookkeeping carry wall-clock timestamps -- but the
    tables results are reduced from contain no clocks at all, so their
    full dumps must match bit for bit.
    """
    conn = sqlite3.connect(root / SQLiteStore.FILENAME)
    try:
        rows = list(conn.execute(
            "SELECT scenario_hash, unit_key, coords, result FROM units"
            " ORDER BY scenario_hash, unit_key"
        ))
        rows += list(conn.execute(
            "SELECT scenario_hash, manifest FROM scenarios"
            " ORDER BY scenario_hash"
        ))
    finally:
        conn.close()
    return hashlib.sha256(repr(rows).encode()).hexdigest()


def _run(scenario, cache_dir, progress, workers=None, backend=None):
    runner = CampaignRunner(
        scenario,
        cache_dir=cache_dir,
        workers=workers,
        cache_backend=backend,
        progress=progress,
    )
    return runner.run()


def _dump(result) -> str:
    return json.dumps(result.to_payload(), sort_keys=True)


@pytest.mark.parametrize(
    "make_scenario", [_attack_scenario, _fleet_scenario],
    ids=["attack", "fleet"],
)
class TestProgressBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2], ids=["serial", "pool2"])
    def test_in_process_modes(self, tmp_path, make_scenario, workers):
        scenario = make_scenario()
        on_dir = tmp_path / "on"
        off_dir = tmp_path / "off"
        on = _run(scenario, on_dir, progress=True, workers=workers)
        off = _run(scenario, off_dir, progress=False, workers=workers)
        assert _dump(on) == _dump(off)
        assert _cache_digest(on_dir) == _cache_digest(off_dir)
        # Progress rows exist on one side only -- under runs/, outside
        # the digest, exactly as designed.
        assert (on_dir / "runs" / ".progress").is_dir()
        assert not (off_dir / "runs").exists()

    def test_distributed_mode(self, tmp_path, make_scenario):
        scenario = make_scenario()
        results = {}
        digests = {}
        for label, progress in (("on", True), ("off", False)):
            root = tmp_path / label
            stats = run_worker(
                scenario,
                cache_dir=root,
                cache_backend="sqlite",
                worker_id="w1",
                idle_timeout_s=30.0,
                progress=progress,
            )
            assert stats.computed == scenario_units(scenario)
            runner = CampaignRunner(
                scenario,
                cache_dir=root,
                cache_backend="sqlite",
                progress=progress,
            )
            results[label] = runner.run_distributed(wait_timeout_s=60.0)
            digests[label] = _sqlite_results_digest(root)
        assert _dump(results["on"]) == _dump(results["off"])
        assert digests["on"] == digests["off"]

    def test_progress_on_matches_progress_off_serial_vs_pool(
        self, tmp_path, make_scenario
    ):
        """Progress-on pooled == progress-off serial: fully orthogonal."""
        scenario = make_scenario()
        pooled = _run(scenario, tmp_path / "p", progress=True, workers=2)
        serial = _run(scenario, tmp_path / "s", progress=False, workers=1)
        assert _dump(pooled) == _dump(serial)
        assert _cache_digest(tmp_path / "p") == _cache_digest(tmp_path / "s")


def scenario_units(scenario) -> int:
    from repro.campaigns.runner import plan_scenario_units

    return len(plan_scenario_units(scenario))


class TestRunnerPublishing:
    def test_serial_run_publishes_runner_snapshots(self, tmp_path):
        scenario = _attack_scenario()
        _run(scenario, tmp_path, progress=True)
        cache = ResultCache(tmp_path)
        rows = read_progress(cache.store, scenario.scenario_hash())
        assert len(rows) == 1
        snap = rows[0]
        assert snap["role"] == "runner"
        assert snap["phase"] == "done"
        assert snap["done_units"] == snap["total_units"] == 2
        assert snap["computed_units"] == 2

    def test_second_run_reports_cache_hits_as_reused(self, tmp_path):
        scenario = _attack_scenario()
        _run(scenario, tmp_path, progress=True)
        _run(scenario, tmp_path, progress=True)
        cache = ResultCache(tmp_path)
        snap = read_progress(cache.store, scenario.scenario_hash())[0]
        assert snap["done_units"] == 2
        assert snap["reused_units"] == 2
        assert snap["computed_units"] == 0

    def test_no_cache_run_publishes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        scenario = _attack_scenario()
        runner = CampaignRunner(scenario, persist=False)
        runner.run()
        assert not (tmp_path / "runs").exists()

    def test_worker_publishes_its_own_snapshot(self, tmp_path):
        scenario = _fleet_scenario()
        run_worker(
            scenario,
            cache_dir=tmp_path,
            cache_backend="sqlite",
            worker_id="worker-a",
            idle_timeout_s=30.0,
            progress=True,
        )
        cache = ResultCache(tmp_path, backend="sqlite")
        rows = read_progress(cache.store, scenario.scenario_hash())
        assert [r["source"] for r in rows] == ["worker-a"]
        snap = rows[0]
        assert snap["role"] == "worker"
        assert snap["phase"] == "done"
        assert snap["done_units"] == snap["total_units"]

    def test_interval_constant_is_sane(self):
        # The throttle must be long enough that per-unit publishing
        # stays off the hot path, short enough that `top` feels live.
        assert 0.5 <= DEFAULT_INTERVAL_S <= 10.0
