"""Population-scale acceptance: 10,000 patients through the SQLite cache.

The fleet subsystem's reason to exist: a cohort two orders of magnitude
past the figure grids must (1) complete through the campaign runner on
the SQLite backend, (2) keep peak memory bounded by the shard size --
the streaming-reduction contract, checked here as sub-linear RSS growth
between a 2k and a 10k cohort, (3) resume bit-identically after a
SIGKILL mid-run, and (4) reduce serial == parallel.
"""

import json
import os
import resource
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.statistical]

_REPO = Path(__file__).resolve().parent.parent

_RUN_ARGS = [
    "run", "fleet-attack-prevalence",
    "--patients", "10000", "--trials", "1", "--chunk-size", "200",
    "--cache-backend", "sqlite",
]


def _spawn(cache_dir: Path, *extra: str, patients: str = "10000"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    args = list(_RUN_ARGS)
    args[args.index("--patients") + 1] = patients
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args,
         "--cache-dir", str(cache_dir), *extra],
        cwd=_REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _cached_units(cache_dir: Path) -> int:
    path = cache_dir / "results.sqlite"
    if not path.exists():
        return 0
    try:
        with sqlite3.connect(path, timeout=5.0) as conn:
            return conn.execute("SELECT COUNT(*) FROM units").fetchone()[0]
    except sqlite3.Error:
        return 0


def _population_point(stdout: str) -> dict:
    payload = json.loads(stdout)
    (point,) = payload["points"]
    return point


class TestTenThousandPatients:
    def test_sigkill_resume_and_serial_parallel_parity(self, tmp_path):
        interrupted = tmp_path / "interrupted"
        pristine = tmp_path / "pristine"

        # 1. Start the 10k run and SIGKILL it once a few shards are in
        #    the SQLite cache (mid-run by construction: 50 shards).
        victim = _spawn(interrupted)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if _cached_units(interrupted) >= 3:
                victim.kill()  # SIGKILL: no cleanup, WAL must cope
                break
            time.sleep(0.01)
        victim.wait(timeout=60)
        was_killed = victim.returncode == -signal.SIGKILL
        partial = _cached_units(interrupted)
        assert partial > 0, "no shards were flushed before the kill"

        # 2. Resume against the survivor DB; control in a fresh one.
        resumed = _spawn(interrupted, "--format", "json")
        control = _spawn(pristine, "--format", "json")
        resumed_out, _ = resumed.communicate(timeout=600)
        control_out, _ = control.communicate(timeout=600)
        assert resumed.returncode == 0
        assert control.returncode == 0

        resumed_point = _population_point(resumed_out)
        control_point = _population_point(control_out)
        assert resumed_point == control_point  # bit-identical reduction
        if was_killed:
            assert json.loads(resumed_out)["units"]["from_cache"] >= partial

        # 3. Parallel execution over the warm-plus-fresh cache mix must
        #    also agree, and a warm re-read computes nothing.
        parallel = _spawn(pristine, "--format", "json", "--workers", "4")
        parallel_out, _ = parallel.communicate(timeout=600)
        assert parallel.returncode == 0
        parallel_payload = json.loads(parallel_out)
        assert parallel_payload["units"]["computed"] == 0
        (parallel_point,) = parallel_payload["points"]
        assert parallel_point == control_point

    def test_parallel_from_cold_matches_serial(self, tmp_path):
        serial = _spawn(tmp_path / "serial", "--format", "json",
                        patients="2000")
        parallel = _spawn(tmp_path / "parallel", "--format", "json",
                          "--workers", "4", patients="2000")
        serial_out, _ = serial.communicate(timeout=600)
        parallel_out, _ = parallel.communicate(timeout=600)
        assert serial.returncode == 0
        assert parallel.returncode == 0
        assert _population_point(serial_out) == _population_point(
            parallel_out
        )

    def test_rss_is_bounded_by_shard_not_cohort(self, tmp_path):
        """Streaming reduction: 5x the patients, ~same peak memory.

        ``ru_maxrss`` of a fresh subprocess is dominated by the
        interpreter + numpy/scipy imports; the campaign's own working
        set must stay at the shard scale, so the 10k cohort may not
        cost more than a modest margin over the 2k cohort.
        """

        def peak_rss_mb(patients: str, cache: Path) -> float:
            before = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            proc = _spawn(cache, patients=patients)
            out, err = proc.communicate(timeout=900)
            assert proc.returncode == 0, err
            after = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            # ru_maxrss(CHILDREN) is a high-water mark across children;
            # run the larger cohort second so a regression (growth with
            # cohort size) is always visible in `after`.
            return max(before, after) / 1024.0

        small = peak_rss_mb("2000", tmp_path / "small")
        large = peak_rss_mb("10000", tmp_path / "large")
        assert large <= small * 1.5 + 64.0, (
            f"peak RSS grew with cohort size: {small:.0f} MB -> "
            f"{large:.0f} MB"
        )
