"""The lease-based work queue and the distributed execution loop.

The claim protocol's contract: every unit evaluated exactly once in the
steady state, claims arbitrated by the database (never Python-side
clocks), expired leases re-queued, and a distributed run reducing
bit-identically to a serial one.  Everything here runs on a 4-unit toy
cohort so the whole file stays tier-1 fast; the 10k-patient SIGKILL
acceptance lives in ``test_distributed_scale.py``.
"""

import json
import threading

import pytest

from repro.campaigns import registry
from repro.campaigns.cache import ResultCache
from repro.campaigns.queue import QueueClaim, WorkQueue, supports_queue
from repro.campaigns.runner import CampaignRunner, plan_scenario_units
from repro.campaigns.store import FilesystemStore, SQLiteStore
from repro.campaigns.worker import run_worker
from repro.obs.report import load_trace, summarize_run
from repro.obs.trace import Tracer


def _scenario(**changes):
    base = registry.get("fleet-attack-prevalence").override(
        n_patients=20, n_trials=1, chunk_size=5
    )
    return base.override(**changes) if changes else base


class _Clock:
    """An injectable time source so expiry tests never sleep."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def queue(tmp_path):
    scenario = _scenario()
    store = SQLiteStore(tmp_path)
    clock = _Clock()
    q = WorkQueue(store, scenario.scenario_hash(), clock=clock)
    q.enqueue(plan_scenario_units(scenario))
    return q


class TestWorkQueue:
    def test_requires_sqlite_backend(self, tmp_path):
        store = FilesystemStore(tmp_path)
        assert not supports_queue(store)
        with pytest.raises(ValueError, match="sqlite"):
            WorkQueue(store, "deadbeef")

    def test_enqueue_is_idempotent(self, tmp_path):
        scenario = _scenario()
        q = WorkQueue(SQLiteStore(tmp_path), scenario.scenario_hash())
        units = plan_scenario_units(scenario)
        assert q.enqueue(units) == len(units) == 4
        assert q.enqueue(units) == 0
        assert q.counts().queued == 4

    def test_claim_complete_lifecycle(self, queue):
        claim = queue.claim("w1", lease_s=60)
        assert isinstance(claim, QueueClaim)
        assert claim.attempt == 1
        counts = queue.counts()
        assert (counts.queued, counts.leased) == (4, 1)
        queue.complete(claim.key, "w1")
        counts = queue.counts()
        assert (counts.queued, counts.leased) == (3, 0)

    def test_claims_never_hand_out_the_same_unit_twice(self, queue):
        keys = [queue.claim(f"w{i}", lease_s=60).key for i in range(4)]
        assert len(set(keys)) == 4
        assert queue.claim("w5", lease_s=60) is None

    def test_abandon_requeues_immediately(self, queue):
        claim = queue.claim("w1", lease_s=60)
        assert queue.abandon(claim.key, "w1")
        again = queue.claim("w2", lease_s=60)
        assert again.key == claim.key
        assert again.attempt == 2

    def test_abandon_is_holder_scoped(self, queue):
        claim = queue.claim("w1", lease_s=60)
        assert not queue.abandon(claim.key, "intruder")
        assert queue.counts().leased == 1

    def test_expired_lease_is_reclaimable(self, queue):
        claim = queue.claim("w1", lease_s=30)
        queue.clock.advance(31)
        again = queue.claim("w2", lease_s=30)
        assert again.key == claim.key
        assert again.attempt == 2
        # The dead worker's lease is gone: only w2's remains.
        assert queue.counts().leased == 1

    def test_live_lease_is_not_reclaimable(self, queue):
        queue.claim("w1", lease_s=30)
        queue.clock.advance(29)
        other = queue.claim("w2", lease_s=30)
        assert other is not None and other.key is not None
        taken = {other.key}
        while (other := queue.claim("w2", lease_s=30)) is not None:
            taken.add(other.key)
        assert len(taken) == 3  # never the unit w1 still holds

    def test_heartbeat_extends_the_lease(self, queue):
        claim = queue.claim("w1", lease_s=30)
        queue.clock.advance(25)
        assert queue.heartbeat(claim.key, "w1", lease_s=30)
        queue.clock.advance(25)  # past the original expiry, not the renewal
        assert queue.claim("w2", lease_s=30) is None or True
        counts = queue.counts()
        assert counts.leased >= 1
        # The renewed unit itself is still w1's.
        assert not queue.abandon(claim.key, "w2")

    def test_heartbeat_reports_a_lost_lease(self, queue):
        claim = queue.claim("w1", lease_s=30)
        queue.clock.advance(31)
        queue.claim("w2", lease_s=30)  # reaps w1's lease
        assert not queue.heartbeat(claim.key, "w1", lease_s=30)

    def test_stale_rows_of_cached_units_stay_claimable(self, tmp_path):
        """put-then-crash leaves a cached unit's queue row reclaimable.

        A worker that persists a result but dies before completing
        leaves a queue row with no lease; the row must still be handed
        out so the next claimant can reuse-retire it (``run_worker``'s
        cache check) instead of the row leaking forever.
        """
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        units = plan_scenario_units(scenario)
        q = WorkQueue(cache.store, scenario.scenario_hash())
        q.enqueue(units)
        cache.put(scenario, units[0].key, units[0].coords, {"cached": True})
        claimed = {q.claim(f"w{i}", lease_s=60).key for i in range(4)}
        assert units[0].key in claimed

    def test_concurrent_claims_resolved_by_the_database(self, tmp_path):
        """N racing workers, one unit: the leases PK picks one winner.

        Each thread opens its own store connection and hits the claim
        barrier together, so the race is real -- the single-statement
        ``INSERT OR IGNORE`` must arbitrate it, not any Python check.
        """
        scenario = _scenario()
        seed_store = SQLiteStore(tmp_path)
        units = plan_scenario_units(scenario)[:1]
        WorkQueue(seed_store, scenario.scenario_hash()).enqueue(units)
        n_workers = 8
        barrier = threading.Barrier(n_workers)
        wins: list[str] = []
        errors: list[Exception] = []

        def contend(worker: str) -> None:
            try:
                store = SQLiteStore(tmp_path)
                q = WorkQueue(store, scenario.scenario_hash())
                barrier.wait()
                claim = q.claim(worker, lease_s=60)
                if claim is not None:
                    wins.append(worker)
                store.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",))
            for i in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(wins) == 1

    def test_prune_clears_queue_state(self, tmp_path):
        scenario = _scenario()
        store = SQLiteStore(tmp_path)
        q = WorkQueue(store, scenario.scenario_hash())
        q.enqueue(plan_scenario_units(scenario))
        q.claim("w1", lease_s=60)
        store.prune([scenario.scenario_hash()])
        counts = q.counts()
        assert (counts.queued, counts.leased) == (0, 0)


class TestRunWorker:
    def test_drains_the_campaign(self, tmp_path):
        scenario = _scenario()
        stats = run_worker(
            scenario, cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="solo", lease_s=30, poll_s=0.01,
        )
        assert stats.claimed == stats.computed == 4
        assert stats.reused == 0 and stats.lease_lost == 0
        cache = ResultCache(tmp_path, backend="sqlite")
        keys = [u.key for u in plan_scenario_units(scenario)]
        assert len(cache.cached_keys(scenario, keys)) == 4
        q = WorkQueue(cache.store, scenario.scenario_hash())
        assert q.counts().idle

    def test_max_units_bounds_the_loop(self, tmp_path):
        stats = run_worker(
            _scenario(), cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="capped", lease_s=30, poll_s=0.01, max_units=2,
        )
        assert stats.claimed == 2

    def test_completed_campaign_is_a_noop(self, tmp_path):
        scenario = _scenario()
        run_worker(scenario, cache_dir=tmp_path, cache_backend="sqlite",
                   worker_id="first", lease_s=30, poll_s=0.01)
        stats = run_worker(
            scenario, cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="second", lease_s=30, poll_s=0.01,
        )
        assert stats.computed == 0
        assert not stats.idle_timeout

    def test_idle_timeout_when_leases_held_elsewhere(self, tmp_path):
        scenario = _scenario()
        store = SQLiteStore(tmp_path)
        q = WorkQueue(store, scenario.scenario_hash())
        q.enqueue(plan_scenario_units(scenario))
        while q.claim("hog", lease_s=3600) is not None:
            pass  # every unit leased by a worker that never finishes
        stats = run_worker(
            scenario, cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="starved", lease_s=30, poll_s=0.01,
            idle_timeout_s=0.1,
        )
        assert stats.idle_timeout
        assert stats.computed == 0

    def test_filesystem_backend_is_an_actionable_error(self, tmp_path):
        with pytest.raises(ValueError, match="cache-backend sqlite"):
            run_worker(
                _scenario(), cache_dir=tmp_path,
                cache_backend="filesystem", worker_id="wrong",
            )

    def test_worker_trace_carries_worker_ids(self, tmp_path):
        scenario = _scenario()
        tracer = Tracer(tmp_path, "queue-worker", run_id="worker-trace")
        run_worker(
            scenario, cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="traced-w", lease_s=30, poll_s=0.01, tracer=tracer,
        )
        manifest, events = load_trace(tracer.path)
        assert manifest["role"] == "worker"
        assert manifest["worker_id"] == "traced-w"
        spans = [e for e in events if e.get("type") == "unit"]
        assert len(spans) == 4
        assert {s["worker"] for s in spans} == {"traced-w"}
        summary = summarize_run(manifest, events)
        assert summary["workers"]["per_worker"]["traced-w"]["units"] == 4
        closing = summary["summary"]
        assert closing["computed"] == 4 and closing["worker_id"] == "traced-w"

    def test_reused_span_counts_as_cache_hit(self, tmp_path):
        scenario = _scenario()
        cache = ResultCache(tmp_path, backend="sqlite")
        units = plan_scenario_units(scenario)
        # Enqueue first, then cache one unit behind the queue's back --
        # the claim hands it out and the worker must reuse, not
        # recompute.  (A unit cached before enqueue is never claimable.)
        q = WorkQueue(cache.store, scenario.scenario_hash())
        q.enqueue(units)
        serial = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend="sqlite"
        )
        serial.materialize(limit=1)
        tracer = Tracer(tmp_path, "queue-worker", run_id="reuse-trace")
        stats = run_worker(
            scenario, cache_dir=tmp_path, cache_backend="sqlite",
            worker_id="reuser", lease_s=30, poll_s=0.01, tracer=tracer,
        )
        assert stats.reused == 1 and stats.computed == 3
        manifest, events = load_trace(tracer.path)
        summary = summarize_run(manifest, events)
        assert summary["cache"]["hits"] == 1
        assert summary["cache"]["computed"] == 3


class _BrokenHeartbeatStore:
    """Stands in for the heartbeat thread's private store connection.

    ``lease_heartbeat`` raising (not returning False) models the store
    itself becoming unreachable -- file deleted, disk gone -- which the
    worker must treat as fatal, not as a lost renewal.
    """

    def __init__(self, root):
        self.root = root

    def lease_heartbeat(self, *args, **kwargs):
        raise OSError("store offline")

    def close(self):
        pass


class TestHeartbeatFailure:
    def _break_heartbeats(self, monkeypatch, exec_delay_s=0.3):
        import repro.campaigns.worker as worker_mod

        monkeypatch.setattr(
            worker_mod, "SQLiteStore", _BrokenHeartbeatStore
        )
        real_evaluate = worker_mod.evaluate_unit

        def slow_evaluate(spec):
            # Long enough that the heartbeat interval (lease/3, floor
            # 0.05s) fires mid-unit deterministically.
            import time as _time

            _time.sleep(exec_delay_s)
            return real_evaluate(spec)

        monkeypatch.setattr(worker_mod, "evaluate_unit", slow_evaluate)

    def test_thread_captures_store_error_and_stops(
        self, tmp_path, monkeypatch
    ):
        import repro.campaigns.worker as worker_mod

        monkeypatch.setattr(
            worker_mod, "SQLiteStore", _BrokenHeartbeatStore
        )
        thread = worker_mod._HeartbeatThread(
            tmp_path, "hash", "w1", lease_s=0.15
        )
        thread.watch("unit-key")
        thread.start()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(thread.error, OSError)
        assert thread.lost == set()

    def test_worker_abandons_claim_and_raises(self, tmp_path, monkeypatch):
        from repro.campaigns.worker import HeartbeatError, run_worker

        self._break_heartbeats(monkeypatch)
        scenario = _scenario()
        with pytest.raises(HeartbeatError, match="store offline"):
            run_worker(
                scenario, cache_dir=tmp_path, cache_backend="sqlite",
                worker_id="zombie", lease_s=0.15, poll_s=0.01,
            )
        cache = ResultCache(tmp_path, backend="sqlite")
        # The in-flight unit was abandoned, not silently persisted:
        # nothing cached, no lease rows left behind.
        keys = [u.key for u in plan_scenario_units(scenario)]
        assert cache.cached_keys(scenario, keys) == set()
        q = WorkQueue(cache.store, scenario.scenario_hash())
        counts = q.counts()
        assert counts.leased == 0
        assert counts.queued == 4

    def test_cli_maps_heartbeat_error_to_exit_4(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.campaigns.cli import main

        self._break_heartbeats(monkeypatch)
        code = main([
            "worker", "fleet-attack-prevalence",
            "--patients", "20", "--trials", "1", "--chunk-size", "5",
            "--cache-backend", "sqlite", "--cache-dir", str(tmp_path),
            "--worker-id", "zombie", "--lease", "0.15", "--poll", "0.01",
        ])
        assert code == 4
        assert "heartbeat" in capsys.readouterr().err


class TestRunDistributed:
    def test_reduces_bit_identically_to_serial(self, tmp_path):
        scenario = _scenario()
        serial = CampaignRunner(
            scenario, cache_dir=tmp_path / "serial", cache_backend="sqlite"
        ).run()
        runner = CampaignRunner(
            scenario, cache_dir=tmp_path / "dist", cache_backend="sqlite"
        )
        worker = threading.Thread(
            target=run_worker,
            args=(scenario,),
            kwargs=dict(
                cache_dir=tmp_path / "dist", cache_backend="sqlite",
                worker_id="bg", lease_s=30, poll_s=0.01,
                idle_timeout_s=60,
            ),
        )
        worker.start()
        try:
            distributed = runner.run_distributed(
                poll_s=0.01, wait_timeout_s=120
            )
        finally:
            worker.join(timeout=120)
        assert json.dumps(distributed.points, sort_keys=True) == json.dumps(
            serial.points, sort_keys=True
        )
        assert distributed.total_units == 4
        assert distributed.computed_units == 4

    def test_timeout_without_workers_names_the_fix(self, tmp_path):
        runner = CampaignRunner(
            _scenario(), cache_dir=tmp_path, cache_backend="sqlite"
        )
        with pytest.raises(RuntimeError, match="python -m repro worker"):
            runner.run_distributed(poll_s=0.01, wait_timeout_s=0.05)
        # The queue survives the timeout: workers can still drain it.
        store = SQLiteStore(tmp_path)
        q = WorkQueue(store, _scenario().scenario_hash())
        assert q.counts().queued == 4

    def test_requires_a_persistent_cache(self, tmp_path):
        runner = CampaignRunner(_scenario(), persist=False)
        with pytest.raises(ValueError, match="persist"):
            runner.run_distributed()

    def test_requires_the_sqlite_backend(self, tmp_path):
        runner = CampaignRunner(
            _scenario(), cache_dir=tmp_path, cache_backend="filesystem"
        )
        with pytest.raises(ValueError, match="sqlite"):
            runner.run_distributed()

    def test_fully_cached_campaign_needs_no_workers(self, tmp_path):
        scenario = _scenario()
        CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend="sqlite"
        ).run()
        result = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend="sqlite"
        ).run_distributed(poll_s=0.01, wait_timeout_s=5)
        assert result.computed_units == 0
        assert result.cached_units == 4
