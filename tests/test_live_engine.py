"""Live engine: deterministic replay, clocks, scheduling, vitals walk.

The load-bearing claim is the replay contract: the event/alarm log is
a pure function of (seed, config) -- byte-identical across runs *and*
across clocks, because the clock paces dispatch but never reorders
it.  Everything else here guards the pieces that contract leans on:
the reserved RNG roles, the heap schedule's shape, the heart-rate
walk's seeded determinism, and the clock implementations themselves.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.fleet.cohort import CohortSpec
# TestClock is aliased so pytest does not try to collect it as a
# test class (it has an __init__).
from repro.live.clock import AcceleratedClock, WallClock
from repro.live.clock import TestClock as DrainClock
from repro.live.engine import (
    LIVE_ATTACK_ROLE,
    LIVE_VITALS_ROLE,
    LiveConfig,
    LiveEngine,
)
from repro.live.events import EventLog, LiveEvent
from repro.physio.ecg import RHYTHM_RATES_BPM, HeartRateWalk


def _run(config, clock=None):
    log = EventLog()
    engine = LiveEngine(
        config, clock=clock if clock is not None else DrainClock(),
        event_log=log,
    )
    asyncio.run(engine.run())
    return engine, log


_SMALL = LiveConfig(
    n_patients=12, duration_s=20.0, attack_bursts=2, seed=11
)


class TestReplayDeterminism:
    def test_same_seed_is_byte_identical(self):
        _, log_a = _run(_SMALL)
        _, log_b = _run(_SMALL)
        assert log_a.lines == log_b.lines
        assert log_a.digest() == log_b.digest()

    def test_different_seed_diverges(self):
        _, log_a = _run(_SMALL)
        _, log_b = _run(
            LiveConfig(
                n_patients=12, duration_s=20.0, attack_bursts=2, seed=12
            )
        )
        assert log_a.digest() != log_b.digest()

    def test_clock_choice_never_touches_the_log(self):
        # A heavily accelerated paced clock and the drain clock must
        # produce the same bytes: pacing is the only thing that may
        # differ between deployment and replay.
        _, drained = _run(_SMALL)
        _, paced = _run(_SMALL, clock=AcceleratedClock(10_000.0))
        assert drained.lines == paced.lines

    def test_log_written_twice_compares_equal(self, tmp_path):
        _, log_a = _run(_SMALL)
        _, log_b = _run(_SMALL)
        path_a = log_a.write(tmp_path / "a.jsonl")
        path_b = log_b.write(tmp_path / "b.jsonl")
        assert path_a.read_bytes() == path_b.read_bytes()


class TestScheduleShape:
    def test_every_patient_is_admitted_then_ticked(self):
        engine, _ = _run(_SMALL)
        assert engine.events_by_kind["session"] == _SMALL.n_patients
        # One tick chain per patient over the horizon.
        expected_ticks = _SMALL.n_patients * int(
            _SMALL.duration_s / _SMALL.telemetry_interval_s
        )
        assert engine.events_by_kind["vitals"] == expected_ticks
        assert engine.finished and not engine.running

    def test_attack_bursts_reach_the_testbed(self):
        engine, log = _run(_SMALL)
        assert engine.events_by_kind["attack"] == (
            _SMALL.attack_bursts * _SMALL.burst_trials
        )
        assert any('"kind":"attack"' in line for line in log.lines)

    def test_dispatch_time_is_monotonic(self):
        engine = LiveEngine(_SMALL)
        seen = []
        engine.add_event_listener(lambda e: seen.append(e.time_s))
        asyncio.run(engine.run())
        assert seen == sorted(seen)

    def test_stop_drains_early(self):
        engine = LiveEngine(_SMALL)
        engine.add_event_listener(
            lambda e: engine.stop() if e.time_s > 5.0 else None
        )
        asyncio.run(engine.run())
        assert not engine.finished
        assert engine.clock.sim_time_s < _SMALL.duration_s

    def test_snapshot_carries_the_gauge_surface(self):
        engine, _ = _run(_SMALL)
        snap = engine.snapshot()
        for key in (
            "running", "finished", "active_sessions", "events_total",
            "events_by_kind", "events_per_s", "alarms_fired",
            "alarms_by_rule", "alarms_suppressed", "sim_time_s",
            "speedup", "behind_s",
        ):
            assert key in snap
        assert snap["active_sessions"] == _SMALL.n_patients
        assert snap["events_total"] == engine.events_total
        assert snap["speedup"] is None  # TestClock advertises no pacing


class TestStreamRoles:
    def test_live_roles_never_alias_batch_streams(self):
        cohort = CohortSpec(n_patients=4, seed=3)
        states = set()
        for role in (0, 1, LIVE_VITALS_ROLE, LIVE_ATTACK_ROLE):
            seq = cohort.stream_seed(2, role)
            states.add(tuple(seq.generate_state(4).tolist()))
        assert len(states) == 4

    def test_stream_seed_rejects_bad_arguments(self):
        cohort = CohortSpec(n_patients=4)
        with pytest.raises(ValueError, match="patient index"):
            cohort.stream_seed(4, 0)
        with pytest.raises(ValueError, match="role"):
            cohort.stream_seed(0, -1)

    def test_profile_and_encounter_streams_unchanged_by_refactor(self):
        # patient_profile / encounter_seed now route through
        # stream_seed; the spawn keys (and so every cached fleet
        # number) must be exactly what they always were.
        cohort = CohortSpec(n_patients=4, seed=9)
        direct = np.random.SeedSequence(
            9, spawn_key=(0xF1EE7, 1, 1)
        ).generate_state(4)
        via = cohort.encounter_seed(1).generate_state(4)
        assert np.array_equal(direct, via)


class TestLiveConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_patients": 0},
            {"duration_s": 0},
            {"telemetry_interval_s": 0},
            {"attack_bursts": -1},
            {"burst_trials": 0},
            {"burst_spacing_s": 0},
            {"attack_command": "reboot"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            LiveConfig(**kwargs)

    def test_cohort_uses_the_fleet_synthesis(self):
        config = LiveConfig(n_patients=7, seed=5)
        cohort = config.cohort()
        assert isinstance(cohort, CohortSpec)
        assert cohort.n_patients == 7 and cohort.seed == 5


class TestHeartRateWalk:
    def _walk(self, rhythm="normal", seed=0):
        return HeartRateWalk(
            rhythm, np.random.default_rng(seed)
        )

    def test_seeded_walk_replays(self):
        walk_a, walk_b = self._walk(), self._walk()
        a = [walk_a.step() for _ in range(50)]
        b = [walk_b.step() for _ in range(50)]
        assert a == b

    def test_stays_in_physiological_band(self):
        walk = HeartRateWalk(
            "afib", np.random.default_rng(1), base_bpm=290.0
        )
        rates = [walk.step() for _ in range(200)]
        assert all(20.0 <= r <= 300.0 for r in rates)

    def test_afib_is_markedly_more_variable_than_sinus(self):
        sinus = self._walk("normal", seed=2)
        afib = HeartRateWalk(
            "afib", np.random.default_rng(2),
            base_bpm=RHYTHM_RATES_BPM["normal"],
        )
        sinus_steps = np.diff([sinus.step() for _ in range(500)])
        afib_steps = np.diff([afib.step() for _ in range(500)])
        assert np.std(afib_steps) > 3.0 * np.std(sinus_steps)

    def test_reverts_toward_base(self):
        walk = self._walk("normal", seed=3)
        walk.rate_bpm = 250.0
        for _ in range(100):
            walk.step()
        assert abs(walk.rate_bpm - walk.base_bpm) < 30.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="rhythm"):
            HeartRateWalk("sinus", np.random.default_rng(0))
        with pytest.raises(ValueError, match="mean_reversion"):
            HeartRateWalk(
                "normal", np.random.default_rng(0), mean_reversion=0.0
            )


class TestClocks:
    def test_drain_clock_never_waits(self):
        clock = DrainClock()
        clock.start()
        start = time.monotonic()
        asyncio.run(clock.advance_to(1e6))
        assert time.monotonic() - start < 0.5
        assert clock.sim_time_s == 1e6

    def test_accelerated_clock_paces_wall_time(self):
        async def scenario():
            clock = AcceleratedClock(100.0)
            clock.start()
            start = time.monotonic()
            await clock.advance_to(10.0)  # 0.1s of wall time
            return time.monotonic() - start

        elapsed = asyncio.run(scenario())
        assert 0.05 <= elapsed < 1.0

    def test_overloaded_clock_records_lag_instead_of_sleeping(self):
        async def scenario():
            clock = AcceleratedClock(1.0)
            clock.start()
            # Simulate dispatch arriving late: ask for a sim instant
            # already in the past.
            clock._start_wall -= 5.0
            start = time.monotonic()
            await clock.advance_to(1.0)
            return clock, time.monotonic() - start

        clock, elapsed = asyncio.run(scenario())
        assert elapsed < 0.5  # never slept to "catch up"
        assert clock.behind_s > 3.0

    def test_wall_clock_is_unit_speedup(self):
        assert WallClock().speedup == 1.0

    def test_rejects_non_positive_speedup(self):
        with pytest.raises(ValueError):
            AcceleratedClock(0.0)


class TestLiveEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            LiveEvent(0.0, 0, "gossip", {})

    def test_canonical_form_is_sorted_and_minimal(self):
        event = LiveEvent(1.5, 3, "vitals", {"hr_bpm": 70.0})
        line = event.canonical()
        assert line == (
            '{"data":{"hr_bpm":70.0},"kind":"vitals","patient":3,"t":1.5}'
        )
