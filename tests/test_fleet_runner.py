"""Fleet campaigns through the runner: sharding, caching, determinism.

The acceptance contract: any shard layout, worker count, or cache
backend reduces a cohort to bit-identical population numbers; a run
killed mid-campaign resumes from cache onto the same numbers; and the
fleet kind's arrival must not move any existing kind's content hash
(pinned below against the pre-fleet values).
"""

import json

import pytest

import repro.campaigns.runner as runner_module
from repro.campaigns import CampaignRunner, registry
from repro.campaigns.spec import SCHEMA_VERSION, Scenario
from repro.fleet.runner import FleetChunkSpec, run_fleet_chunk
from repro.fleet.cohort import CohortSpec


def _attack_fleet(**changes) -> Scenario:
    base = dict(
        name="test-fleet",
        kind="fleet",
        fleet_task="attack",
        attacker="fcc",
        command="therapy",
        n_patients=24,
        n_trials=2,
        chunk_size=8,
        shield_worn_fraction=0.75,
        location_indices=tuple(range(1, 15)),
        seed=13,
    )
    base.update(changes)
    return Scenario(**base)


def _physio_fleet(**changes) -> Scenario:
    base = dict(
        name="test-fleet-physio",
        kind="fleet",
        fleet_task="physio",
        n_patients=12,
        n_trials=1,
        chunk_size=4,
        packets_per_record=4,
        shield_worn_fraction=0.5,
        location_indices=(1, 5, 12, 17),
        seed=13,
    )
    base.update(changes)
    return Scenario(**base)


class TestScenarioHashStability:
    """Adding the fleet kind must not invalidate any existing cache."""

    #: Content hashes of every builtin scenario as of schema v3 --
    #: captured immediately before the fleet kind landed.  If one of
    #: these moves, every user's cached results for that scenario are
    #: silently orphaned; that is only ever acceptable with a deliberate
    #: per-kind schema bump.
    PRE_FLEET_HASHES = {
        "attack-success-shielded": "c0652e4182dc0c01",
        "attack-success-unshielded": "142ce662a7c97493",
        "battery-drain-shielded": "97589ed51f0ce673",
        "battery-drain-unshielded": "4b43406a1c51bd3a",
        "crypto-only-baseline": "6641f24873469853",
        "highpower-shielded": "a6ab2cabcb0fee4f",
        "highpower-unshielded": "0801bd596b763fa3",
        "mimo-eavesdropper": "dd420bd9e092855f",
        "passive-ber-by-location": "92c7a87deecdf940",
        "physio-leakage-by-location": "23455f35f9f18cbe",
        "physio-leakage-shielded": "5432522a2444f20d",
        "physio-rhythm-privacy": "e6d74824f0eb87fc",
    }

    def test_existing_scenario_hashes_unchanged(self):
        for name, expected in self.PRE_FLEET_HASHES.items():
            assert registry.get(name).scenario_hash() == expected, name

    def test_fleet_payload_carries_v4_schema(self):
        assert SCHEMA_VERSION == 4
        assert _attack_fleet().payload()["schema"] == 4

    def test_existing_kinds_keep_v3_schema(self):
        for name in self.PRE_FLEET_HASHES:
            assert registry.get(name).payload()["schema"] == 3, name


class TestPlan:
    def test_sharding_partitions_the_cohort(self):
        units = CampaignRunner(_attack_fleet(), persist=False).plan()
        assert [u.coords["start"] for u in units] == [0, 8, 16]
        assert [u.coords["n_patients"] for u in units] == [8, 8, 8]
        assert len({u.key for u in units}) == 3

    def test_default_shard_bounds_unit_size(self):
        units = CampaignRunner(
            _attack_fleet(chunk_size=None, n_patients=250), persist=False
        ).plan()
        assert [u.coords["n_patients"] for u in units] == [100, 100, 50]

    def test_adaptive_rounds_rejected(self):
        from repro.campaigns.runner import plan_scenario_units

        with pytest.raises(ValueError, match="fixed-budget only"):
            plan_scenario_units(_attack_fleet(), round_index=0)

    def test_adaptive_scheduler_rejects_fleet(self):
        from repro.stats.adaptive import AdaptiveScheduler

        with pytest.raises(ValueError, match="fixed-budget only"):
            AdaptiveScheduler(_attack_fleet())

    def test_shard_spec_validates_range(self):
        cohort = CohortSpec(n_patients=10, seed=0)
        with pytest.raises(ValueError, match="exceeds"):
            FleetChunkSpec(
                cohort=cohort, start=8, count=4, trials_per_patient=1,
                task="attack",
            )


class TestDeterminism:
    def test_shard_layout_does_not_change_the_numbers(self):
        coarse = CampaignRunner(
            _attack_fleet(chunk_size=24), persist=False
        ).run()
        fine = CampaignRunner(
            _attack_fleet(chunk_size=5), persist=False
        ).run()
        assert coarse.points == fine.points

    def test_serial_equals_parallel(self):
        serial = CampaignRunner(_attack_fleet(), persist=False).run()
        parallel = CampaignRunner(
            _attack_fleet(), persist=False, workers=3
        ).run()
        assert serial.points == parallel.points

    def test_physio_task_serial_equals_parallel(self):
        serial = CampaignRunner(_physio_fleet(), persist=False).run()
        parallel = CampaignRunner(
            _physio_fleet(), persist=False, workers=3
        ).run()
        assert serial.points == parallel.points

    def test_unit_result_is_reduced_not_per_patient(self):
        """The streaming contract: a shard's payload has no per-patient
        list -- its size is set by the accumulator schema alone."""
        cohort = CohortSpec(n_patients=40, seed=3, shield_worn_fraction=1.0)
        small = run_fleet_chunk(FleetChunkSpec(
            cohort=cohort, start=0, count=2, trials_per_patient=1,
            task="attack",
        ))
        large = run_fleet_chunk(FleetChunkSpec(
            cohort=cohort, start=0, count=40, trials_per_patient=1,
            task="attack",
        ))
        assert set(small) == set(large)
        assert large["patients"] == 40
        # Attack payloads carry no sketch mass, so the serialized sizes
        # are within a few bytes of each other regardless of patients.
        assert abs(len(json.dumps(large)) - len(json.dumps(small))) < 64


class TestCacheResume:
    @pytest.mark.parametrize("backend", ["filesystem", "sqlite"])
    def test_second_run_fully_cached_and_identical(self, tmp_path, backend):
        scenario = _attack_fleet()
        first = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend=backend
        ).run()
        assert first.computed_units == first.total_units
        second = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend=backend
        ).run()
        assert second.computed_units == 0
        assert second.points == first.points

    def test_backends_agree_bit_for_bit(self, tmp_path):
        scenario = _physio_fleet()
        fs = CampaignRunner(
            scenario, cache_dir=tmp_path / "fs", cache_backend="filesystem"
        ).run()
        sq = CampaignRunner(
            scenario, cache_dir=tmp_path / "sq", cache_backend="sqlite"
        ).run()
        assert fs.points == sq.points
        # And a warm re-read from each backend still agrees.
        fs2 = CampaignRunner(
            scenario, cache_dir=tmp_path / "fs", cache_backend="filesystem"
        ).run()
        sq2 = CampaignRunner(
            scenario, cache_dir=tmp_path / "sq", cache_backend="sqlite"
        ).run()
        assert fs2.computed_units == sq2.computed_units == 0
        assert fs2.points == sq2.points == fs.points

    @pytest.mark.parametrize("backend", ["filesystem", "sqlite"])
    def test_interrupted_run_resumes_bit_identical(
        self, tmp_path, monkeypatch, backend
    ):
        scenario = _attack_fleet()  # 3 shards
        fresh = CampaignRunner(scenario, persist=False).run()

        real_evaluate = runner_module.evaluate_unit
        calls = {"n": 0}

        def dying_evaluate(spec):
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_evaluate(spec)

        monkeypatch.setattr(runner_module, "evaluate_unit", dying_evaluate)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                scenario, cache_dir=tmp_path, cache_backend=backend
            ).run()
        monkeypatch.setattr(runner_module, "evaluate_unit", real_evaluate)

        status = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend=backend
        ).status()
        assert status.cached_units == 2
        assert not status.complete

        resumed = CampaignRunner(
            scenario, cache_dir=tmp_path, cache_backend=backend
        ).run()
        assert resumed.cached_units == 2
        assert resumed.computed_units == 1
        assert resumed.points == fresh.points


class TestReduction:
    def test_attack_point_shape(self):
        result = CampaignRunner(_attack_fleet(), persist=False).run()
        (point,) = result.points
        assert point["axis"] == "population"
        assert point["n_patients"] == 24
        assert 0.0 <= point["attack_prevalence"] <= 1.0
        assert point["alarm_rate_per_day"] >= 0.0
        assert result.value_key == "attack_prevalence"

    def test_physio_point_shape(self):
        result = CampaignRunner(_physio_fleet(), persist=False).run()
        (point,) = result.points
        assert point["hr_leak_p10_bpm"] <= point["hr_leak_median_bpm"]
        assert point["hr_leak_median_bpm"] <= point["hr_leak_p90_bpm"]
        assert sum(point["ber_strata"].values()) == point["n_patients"]
        assert result.value_key == "hr_leak_median_bpm"

    def test_full_adherence_blocks_therapy_tampering(self):
        result = CampaignRunner(
            _attack_fleet(shield_worn_fraction=1.0), persist=False
        ).run()
        assert result.points[0]["attack_prevalence"] == 0.0

    def test_zero_adherence_near_range_is_compromised(self):
        result = CampaignRunner(
            _attack_fleet(
                shield_worn_fraction=0.0,
                location_indices=(1, 2, 3),
                n_patients=10,
                chunk_size=None,
            ),
            persist=False,
        ).run()
        assert result.points[0]["attack_prevalence"] == 1.0

    def test_validation_judges_fleet_through_fixed_path(self, tmp_path):
        from repro.stats.validation import validate_scenario

        scenario = _attack_fleet(
            shield_worn_fraction=1.0, n_patients=16, chunk_size=None
        )
        from repro.stats.expectations import Expectation

        validation = validate_scenario(
            scenario,
            (
                Expectation(
                    metric="attack_prevalence",
                    kind="upper_bound",
                    value=0.05,
                ),
            ),
            adaptive=True,  # silently degrades to fixed for fleet
            cache_dir=tmp_path,
        )
        assert not validation.adaptive
        assert validation.verdict == "pass"
        assert validation.trials_used == 32  # patients x trials

    def test_physio_cohort_has_no_attack_estimators(self):
        from repro.stats.validation import cells_from_result

        result = CampaignRunner(_physio_fleet(), persist=False).run()
        (cell,) = cells_from_result(result)
        assert "attack_prevalence" not in cell.estimators
        assert "hr_leak_median_bpm" in cell.estimators

    def test_patient_jam_margin_reaches_the_testbed(self):
        """The cohort's per-device jam margin must set the actual
        passive jam power -- not be silently overwritten by the
        link-budget default (regression: it was a no-op)."""
        from repro.core.config import ShieldConfig
        from repro.experiments.testbed import AttackTestbed

        import dataclasses

        quiet = AttackTestbed(
            location_index=1,
            shield_config=dataclasses.replace(
                ShieldConfig(), passive_jam_margin_db=6.0
            ),
        )
        loud = AttackTestbed(
            location_index=1,
            shield_config=dataclasses.replace(
                ShieldConfig(), passive_jam_margin_db=30.0
            ),
        )
        delta = (
            loud.shield.config.passive_jam_tx_dbm
            - quiet.shield.config.passive_jam_tx_dbm
        )
        assert delta == pytest.approx(24.0)
        # And the default config still lands exactly where it always has.
        default = AttackTestbed(location_index=1)
        assert default.shield.config.passive_jam_tx_dbm == pytest.approx(
            default.budget.passive_jam_tx_dbm()
        )

    def test_compare_rejects_mismatched_fleet_tasks(self):
        from repro.campaigns.cli import main

        with pytest.raises(SystemExit, match="task"):
            main([
                "compare", "fleet-attack-prevalence", "fleet-privacy-leakage",
                "--no-cache",
            ])

    def test_registered_fleet_scenarios_compile(self):
        for name in (
            "fleet-attack-prevalence",
            "fleet-privacy-leakage",
            "fleet-alarm-burden",
        ):
            scenario = registry.get(name)
            units = CampaignRunner(scenario, persist=False).plan()
            assert sum(u.coords["n_patients"] for u in units) == (
                scenario.n_patients
            )
