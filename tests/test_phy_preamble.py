"""Tests for S_id matching and preamble correlation (S7 machinery)."""

import numpy as np
import pytest

from repro.phy.fsk import FSKModulator
from repro.phy.preamble import (
    DEFAULT_PREAMBLE_BITS,
    IdentifyingSequence,
    correlate_preamble,
    hamming_distance,
    sliding_sequence_match,
)


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_counts_differences(self):
        assert hamming_distance([1, 1, 1, 1], [0, 1, 0, 1]) == 2

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([1, 0], [1])


class TestIdentifyingSequence:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IdentifyingSequence(np.array([], dtype=int))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            IdentifyingSequence(np.array([0, 1, 2]))

    def test_exact_match(self):
        seq = IdentifyingSequence(np.array([1, 0, 1, 1, 0, 0, 1, 0]))
        assert seq.matches(seq.bits, b_thresh=0)

    def test_tolerates_up_to_b_thresh_flips(self, rng):
        bits = rng.integers(0, 2, size=104)
        seq = IdentifyingSequence(bits)
        corrupted = bits.copy()
        corrupted[[3, 40, 77, 100]] ^= 1  # exactly 4 flips
        assert seq.matches(corrupted, b_thresh=4)
        assert not seq.matches(corrupted, b_thresh=3)

    def test_longer_candidate_uses_prefix(self, rng):
        bits = rng.integers(0, 2, size=32)
        seq = IdentifyingSequence(bits)
        extended = np.concatenate([bits, rng.integers(0, 2, size=16)])
        assert seq.matches(extended, b_thresh=0)

    def test_short_candidate_never_matches(self):
        seq = IdentifyingSequence(np.ones(16, dtype=int))
        assert not seq.matches(np.ones(8, dtype=int), b_thresh=16)


class TestSlidingMatch:
    def test_finds_offset(self, rng):
        sid_bits = rng.integers(0, 2, size=40)
        seq = IdentifyingSequence(sid_bits)
        stream = np.concatenate(
            [rng.integers(0, 2, size=17), sid_bits, rng.integers(0, 2, size=9)]
        )
        # A random 17-bit prefix could accidentally match; require the
        # found offset to be at most the planted one.
        offset = sliding_sequence_match(stream, seq, b_thresh=0)
        assert offset == 17

    def test_none_when_absent(self, rng):
        seq = IdentifyingSequence(np.ones(32, dtype=int))
        stream = np.zeros(100, dtype=int)
        assert sliding_sequence_match(stream, seq, b_thresh=3) is None

    def test_none_when_stream_short(self):
        seq = IdentifyingSequence(np.ones(32, dtype=int))
        assert sliding_sequence_match(np.ones(10, dtype=int), seq, 0) is None

    def test_tolerance(self, rng):
        sid_bits = rng.integers(0, 2, size=40)
        seq = IdentifyingSequence(sid_bits)
        noisy = sid_bits.copy()
        noisy[5] ^= 1
        assert sliding_sequence_match(noisy, seq, b_thresh=1) == 0
        assert sliding_sequence_match(noisy, seq, b_thresh=0) is None


class TestPreambleCorrelation:
    def test_locates_preamble(self, rng):
        mod = FSKModulator()
        payload = mod.modulate(rng.integers(0, 2, size=64))
        preamble = mod.modulate(DEFAULT_PREAMBLE_BITS)
        stream = preamble.delayed(123)
        stream = stream.padded_to(len(stream) + len(payload))
        offset, peak = correlate_preamble(stream)
        assert offset == 123
        assert peak > 0.9

    def test_rejects_short_waveform(self):
        from repro.phy.signal import Waveform

        with pytest.raises(ValueError):
            correlate_preamble(Waveform(np.ones(4), 600e3))
