"""Tests for ShieldConfig and the jam-window / alarm policies."""

import pytest

from repro.core.config import ShieldConfig
from repro.core.policy import AlarmPolicy, JamWindow, JamWindowPolicy


class TestShieldConfig:
    def test_paper_timing_defaults(self):
        """S6: T1 = 2.8 ms, T2 = 3.7 ms, P = 21 ms for the tested IMDs."""
        cfg = ShieldConfig()
        assert cfg.t1_s == pytest.approx(2.8e-3)
        assert cfg.t2_s == pytest.approx(3.7e-3)
        assert cfg.max_packet_s == pytest.approx(21e-3)

    def test_jam_window_duration(self):
        """S6: the shield jams for (T2 - T1) + P."""
        cfg = ShieldConfig()
        assert cfg.jam_window_duration_s == pytest.approx(0.9e-3 + 21e-3)

    def test_b_thresh_default(self):
        """S10.1(c): b_thresh = 4."""
        assert ShieldConfig().b_thresh == 4

    def test_turnaround_default(self):
        """Table 2: 270 +/- 23 us."""
        cfg = ShieldConfig()
        assert cfg.turnaround_s == pytest.approx(270e-6)
        assert cfg.turnaround_std_s == pytest.approx(23e-6)

    def test_antenna_cancellation_default(self):
        """Fig. 7: ~32 dB mean cancellation."""
        assert ShieldConfig().antenna_cancellation_db == pytest.approx(32.0)

    def test_active_jam_at_fcc_limit(self):
        """S7(d): the shield obeys the FCC cap even while jamming."""
        assert ShieldConfig().active_jam_tx_dbm == pytest.approx(-16.0)

    def test_probe_interval(self):
        """S5: re-estimate channels every 200 ms outside sessions."""
        assert ShieldConfig().probe_interval_s == pytest.approx(0.2)

    def test_monitors_whole_band(self):
        """S7(c): the shield watches all ten MICS channels."""
        assert set(ShieldConfig().monitored_channels) == set(range(10))

    def test_total_cancellation(self):
        cfg = ShieldConfig(antenna_cancellation_db=32.0, digital_cancellation_db=8.0)
        assert cfg.total_cancellation_db == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShieldConfig(t1_s=5e-3, t2_s=3e-3)
        with pytest.raises(ValueError):
            ShieldConfig(b_thresh=-1)
        with pytest.raises(ValueError):
            ShieldConfig(turnaround_s=0)
        with pytest.raises(ValueError):
            ShieldConfig(monitored_channels=())
        with pytest.raises(ValueError):
            ShieldConfig(detection_window_bits=2)


class TestJamWindowPolicy:
    def test_window_geometry(self):
        policy = JamWindowPolicy()
        window = policy.window_after(command_end_time=1.0)
        assert window.start_time == pytest.approx(1.0 + 2.8e-3)
        assert window.duration == pytest.approx(0.9e-3 + 21e-3)

    def test_covers_every_legal_reply(self):
        """Any reply delayed within [T1, T2] and up to P long must fall
        fully inside the jam window -- the S6 guarantee."""
        policy = JamWindowPolicy()
        for delay in (2.8e-3, 3.0e-3, 3.5e-3, 3.7e-3):
            for duration in (1e-3, 10e-3, 21e-3):
                assert policy.covers_reply(0.0, delay, duration), (delay, duration)

    def test_does_not_cover_early_reply(self):
        policy = JamWindowPolicy()
        assert not policy.covers_reply(0.0, 1.0e-3, 5e-3)

    def test_does_not_cover_oversized_reply(self):
        policy = JamWindowPolicy()
        assert not policy.covers_reply(0.0, 3.7e-3, 25e-3)

    def test_from_config(self):
        cfg = ShieldConfig()
        policy = JamWindowPolicy.from_config(cfg)
        assert policy.t1_s == cfg.t1_s

    def test_validation(self):
        with pytest.raises(ValueError):
            JamWindowPolicy(t1_s=2e-3, t2_s=1e-3)
        with pytest.raises(ValueError):
            JamWindowPolicy(max_packet_s=0)


class TestJamWindow:
    def test_covers(self):
        w = JamWindow(1.0, 0.5)
        assert w.covers(1.1, 1.4)
        assert not w.covers(0.9, 1.2)
        assert not w.covers(1.2, 1.6)


class TestAlarmPolicy:
    def test_records_events(self):
        alarms = AlarmPolicy()
        alarms.raise_alarm(1.0, -10.0, "above-p-thresh")
        alarms.raise_alarm(2.0, -5.0, "power-anomaly")
        assert alarms.alarm_count == 2
        assert alarms.events[0].reason == "above-p-thresh"

    def test_alarms_since(self):
        alarms = AlarmPolicy()
        alarms.raise_alarm(1.0, -10.0, "x")
        alarms.raise_alarm(5.0, -10.0, "y")
        assert [e.reason for e in alarms.alarms_since(2.0)] == ["y"]
