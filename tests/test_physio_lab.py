"""Tests for the payload-source refactor, batch eavesdropping, and PhysioLab.

Two regression families matter here:

* **Bit-for-bit payload seeds** -- extracting the random payload behind
  the :class:`PayloadSource` protocol must not move a single bit of the
  seeded figure sweeps; the digests below were captured on the
  pre-refactor implementation.
* **Batch-vs-scalar parity** -- ``Eavesdropper.attack_batch`` must
  reproduce the scalar ``attack`` path row for row.
"""

import hashlib

import numpy as np
import pytest

from repro.adversary.eavesdropper import Eavesdropper
from repro.adversary.strategies import FilterBankStrategy
from repro.experiments.physio_lab import NO_JAMMING_MARGIN_DB, PhysioLab
from repro.experiments.waveform_lab import (
    PassiveLab,
    PayloadSource,
    RandomPayloadSource,
)
from repro.phy.fsk import FSKModulator
from repro.phy.signal import Waveform
from repro.physio.codec import PhysioPayloadSource


class TestPayloadSeedRegression:
    """Pinned to the pre-PayloadSource implementation's exact bits."""

    def test_single_packet_bits_unchanged(self):
        bits = PassiveLab(seed=7).telemetry_packet_bits()
        assert bits.shape == (1680,)
        assert (
            hashlib.sha256(bits.tobytes()).hexdigest()[:16]
            == "6bcec0e57b20897a"
        )

    def test_packet_batch_bits_unchanged(self):
        bits = PassiveLab(seed=0).telemetry_packet_bits_batch(3)
        assert bits.shape == (3, 1680)
        assert (
            hashlib.sha256(bits.tobytes()).hexdigest()[:16]
            == "2b7a48471dafb95d"
        )

    def test_run_batch_numbers_unchanged(self):
        batch = PassiveLab(seed=42).run_batch(20.0, 4, location_index=2)
        assert [float(b) for b in batch.eavesdropper_ber] == [
            0.49047619047619045,
            0.4857142857142857,
            0.48273809523809524,
            0.48095238095238096,
        ]
        assert [int(e) for e in batch.shield_bit_errors] == [0, 0, 0, 0]


class TestPayloadSourceProtocol:
    def test_default_source_is_random_24_bytes(self):
        lab = PassiveLab(seed=1)
        assert isinstance(lab.payload_source, RandomPayloadSource)
        assert lab.payload_source.payload_size == 24

    def test_random_source_validates_size(self):
        with pytest.raises(ValueError):
            RandomPayloadSource(size=300)

    def test_physio_source_satisfies_protocol(self):
        source = PhysioPayloadSource(np.zeros((2, 54), dtype=np.uint8))
        assert isinstance(source, PayloadSource)

    def test_custom_source_changes_frame_length(self):
        source = PhysioPayloadSource(
            np.arange(2 * 54, dtype=np.uint8).reshape(2, 54)
        )
        lab = PassiveLab(seed=1, payload_source=source)
        bits = lab.telemetry_packet_bits_batch(2)
        # 16 preamble + 8 * (sync + serial(10) + opcode/seq/len(3) + 54 + crc(2))
        assert bits.shape == (2, 16 + 8 * (1 + 10 + 3 + 54 + 2))


class TestRunBatchBitsOverride:
    def test_bits_override_transmits_exactly_those_packets(self):
        lab = PassiveLab(seed=2)
        fixed = lab.telemetry_packet_bits_batch(3)
        result = lab.run_batch(
            NO_JAMMING_MARGIN_DB,
            bits=fixed,
            location_index=1,
            score_shield=False,
            return_eavesdropper_bits=True,
        )
        # No jamming at location 1: the eavesdropper decodes perfectly.
        np.testing.assert_array_equal(result.eavesdropper_bits, fixed)
        assert result.mean_eavesdropper_ber() == 0.0

    def test_bits_override_validates_shape(self):
        lab = PassiveLab(seed=2)
        with pytest.raises(ValueError, match="n_packets"):
            lab.run_batch(20.0, 5, bits=np.zeros((3, 100), dtype=np.int64))
        with pytest.raises(ValueError):
            lab.run_batch(20.0, bits=np.zeros(100, dtype=np.int64))

    def test_needs_packets_or_bits(self):
        with pytest.raises(ValueError, match="n_packets"):
            PassiveLab(seed=2).run_batch(20.0)

    def test_return_bits_requires_scoring_the_eavesdropper(self):
        with pytest.raises(ValueError, match="score_eavesdropper"):
            PassiveLab(seed=2).run_batch(
                20.0, 2, score_eavesdropper=False,
                return_eavesdropper_bits=True,
            )

    def test_sample_path_returns_bits_too(self):
        lab = PassiveLab(seed=3)
        fixed = lab.telemetry_packet_bits_batch(2)
        result = lab.run_batch(
            20.0,
            bits=fixed,
            strategy=FilterBankStrategy(),
            score_shield=False,
            return_eavesdropper_bits=True,
        )
        assert result.eavesdropper_bits.shape == fixed.shape

    def test_bits_not_returned_unless_requested(self):
        result = PassiveLab(seed=3).run_batch(20.0, 2, score_shield=False)
        assert result.eavesdropper_bits is None


class TestAttackBatchParity:
    def _noisy_block(self, rng, n_packets=6, n_bits=64, noise=0.5):
        bits = rng.integers(0, 2, size=(n_packets, n_bits))
        clean = FSKModulator().modulate_batch(bits)
        noisy = clean + noise * (
            rng.standard_normal(clean.shape)
            + 1j * rng.standard_normal(clean.shape)
        )
        return bits, noisy

    def test_batch_matches_scalar_attack(self, rng):
        bits, noisy = self._noisy_block(rng)
        eavesdropper = Eavesdropper()
        batch = eavesdropper.attack_batch(noisy, bits)
        for i in range(len(bits)):
            scalar = eavesdropper.attack(Waveform(noisy[i], 600e3), bits[i])
            np.testing.assert_array_equal(scalar.bits, batch.bits[i])
            assert scalar.bit_error_rate == batch.bit_error_rates[i]
        assert batch.strategy == "TreatJammingAsNoise"

    def test_batch_matches_scalar_with_preprocessing_strategy(self, rng):
        bits, noisy = self._noisy_block(rng, n_packets=3)
        eavesdropper = Eavesdropper(strategy=FilterBankStrategy())
        batch = eavesdropper.attack_batch(noisy, bits)
        for i in range(len(bits)):
            scalar = eavesdropper.attack(Waveform(noisy[i], 600e3), bits[i])
            np.testing.assert_array_equal(scalar.bits, batch.bits[i])
            assert scalar.bit_error_rate == batch.bit_error_rates[i]

    def test_results_unpack_per_packet(self, rng):
        bits, noisy = self._noisy_block(rng, n_packets=2)
        batch = Eavesdropper().attack_batch(noisy, bits)
        rows = batch.results()
        assert len(rows) == batch.n_packets == 2
        assert rows[0].bit_error_rate == batch.bit_error_rates[0]

    def test_shape_validation(self, rng):
        bits, noisy = self._noisy_block(rng, n_packets=2)
        eavesdropper = Eavesdropper()
        with pytest.raises(ValueError):
            eavesdropper.attack_batch(noisy, bits[0])
        with pytest.raises(ValueError):
            eavesdropper.attack_batch(noisy[:1], bits)


class TestPhysioLab:
    def test_deterministic_across_instances(self):
        a = PhysioLab(seed=5).run_records(4, location_index=2)
        b = PhysioLab(seed=5).run_records(4, location_index=2)
        assert a.moments() == b.moments()

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        a = PhysioLab(seed=seq).run_records(3, location_index=1)
        b = PhysioLab(seed=np.random.SeedSequence(5)).run_records(
            3, location_index=1
        )
        assert a.moments() == b.moments()

    def test_repeated_calls_draw_fresh_records(self):
        lab = PhysioLab(seed=5)
        first = lab.run_records(3, location_index=1)
        second = lab.run_records(3, location_index=1)
        assert not np.array_equal(
            first.heart_rate_true, second.heart_rate_true
        )

    def test_shield_off_leaks_clean_content(self):
        result = PhysioLab(seed=6).run_records(
            6, location_index=1, shield_present=False
        )
        assert float(result.hr_abs_error.mean()) < 1.0
        assert float(result.beat_f1.mean()) > 0.95
        assert result.rhythm_correct == result.n_records
        assert float(result.ber_attacker.mean()) == 0.0
        # Shield-off: attacker and clear conditions coincide.
        np.testing.assert_array_equal(
            result.heart_rate_attacker, result.heart_rate_clear
        )

    def test_shield_on_destroys_content_but_clear_reference_leaks(self):
        result = PhysioLab(seed=7).run_records(
            8, jam_margin_db=20.0, location_index=1, shield_present=True
        )
        assert float(result.ber_attacker.mean()) > 0.4
        assert float(result.hr_abs_error.mean()) > 10.0
        assert float(result.hr_abs_error_clear.mean()) < 1.0

    def test_mixed_rhythm_draws_multiple_classes(self):
        result = PhysioLab(seed=8).run_records(
            12, location_index=1, shield_present=False, rhythm="mixed"
        )
        assert len(set(result.rhythms_true)) >= 2

    def test_rejects_unknown_rhythm(self):
        with pytest.raises(ValueError, match="unknown rhythm"):
            PhysioLab(seed=8).run_records(2, rhythm="sinus")

    def test_moments_reconstruct_means(self):
        result = PhysioLab(seed=9).run_records(5, location_index=2)
        moments = result.moments()
        assert moments["n_records"] == 5
        assert moments["hr_err_sum"] == pytest.approx(
            float(result.hr_abs_error.sum())
        )
        assert moments["rhythm_correct"] == result.rhythm_correct

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            PhysioLab(packets_per_record=0)
        with pytest.raises(ValueError):
            PhysioLab(chance_repeats=0)
        with pytest.raises(ValueError):
            PhysioLab(seed=1).run_records(0)
