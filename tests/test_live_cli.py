"""``python -m repro live`` and ``repro top --live``.

The CLI seams: the live verb drives the engine and honours the replay
contract end to end (two invocations of one seed write identical log
bytes), bad arguments die at the argparse/config boundary with an
error instead of a traceback, and ``top --live`` renders a live
server's /status JSON (stubbed here -- the real endpoint is pinned in
``tests/test_live_serve.py``).
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.campaigns.cli import main

_FAST = [
    "live", "--patients", "8", "--duration", "6", "--drain",
    "--seed", "21",
]


class TestLiveVerb:
    def test_replays_byte_identical_logs(self, tmp_path, capsys):
        log_a = tmp_path / "a.jsonl"
        log_b = tmp_path / "b.jsonl"
        assert main(_FAST + ["--log-events", str(log_a)]) == 0
        assert main(_FAST + ["--log-events", str(log_b)]) == 0
        assert log_a.read_bytes() == log_b.read_bytes()
        out = capsys.readouterr().out
        # The same digest is reported for both runs.
        digests = {
            line.split("digest ")[1].rstrip(")")
            for line in out.splitlines()
            if "digest" in line
        }
        assert len(digests) == 1

    def test_log_lines_are_canonical_json(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(_FAST + ["--log-events", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            payload = json.loads(line)
            assert line == json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )

    def test_prints_the_status_block(self, capsys):
        assert main(_FAST) == 0
        out = capsys.readouterr().out
        assert "live engine FINISHED" in out
        assert "events:" in out and "alarms:" in out

    @pytest.mark.parametrize(
        "argv",
        [
            ["live", "--patients", "0", "--drain"],
            ["live", "--duration", "0", "--drain"],
            ["live", "--speedup", "0"],
            ["live", "--bursts", "-1", "--drain"],
        ],
    )
    def test_bad_arguments_exit_with_an_error(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert "error" in str(excinfo.value)


def _status_server(snapshots):
    """A stub live server: each GET /status pops the next snapshot."""

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path != "/status":
                self.send_error(404)
                return
            body = json.dumps(
                snapshots.pop(0) if len(snapshots) > 1 else snapshots[0]
            ).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


class TestTopLive:
    _RUNNING = {
        "running": True, "finished": False, "active_sessions": 10,
        "sim_time_s": 5.0, "duration_s": 60.0, "speedup": 100.0,
        "events_total": 500, "events_per_s": 9500.0,
        "events_by_kind": {"vitals": 480, "session": 10},
        "alarms_fired": 2, "alarms_suppressed": 1,
        "alarms_by_rule": {"tachycardia": 2},
        "behind_s": 0.0, "subscribers": 3, "frames_flushed": 40,
        "frames_dropped": 7,
    }
    _DONE = dict(_RUNNING, running=False, finished=True)

    def test_polls_until_the_engine_finishes(self, capsys):
        server = _status_server([self._RUNNING, self._DONE])
        try:
            host, port = server.server_address[:2]
            rc = main([
                "top", "--live", f"{host}:{port}",
                "--interval", "0.05",
            ])
        finally:
            server.shutdown()
            server.server_close()
        assert rc == 0
        out = capsys.readouterr().out
        assert "live engine RUNNING" in out
        assert "live engine FINISHED" in out
        assert "3 subscriber(s)" in out
        assert "7 dropped" in out

    def test_once_prints_a_single_json_snapshot(self, capsys):
        server = _status_server([self._DONE])
        try:
            host, port = server.server_address[:2]
            rc = main([
                "top", "--live", f"http://{host}:{port}",
                "--once", "--json",
            ])
        finally:
            server.shutdown()
            server.server_close()
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["finished"] is True

    def test_unreachable_server_is_an_error(self):
        with pytest.raises(SystemExit, match="cannot poll"):
            main([
                "top", "--live", "http://127.0.0.1:9", "--once",
            ])

    def test_scenario_is_still_required_without_live(self):
        with pytest.raises(SystemExit, match="scenario name is required"):
            main(["top"])
