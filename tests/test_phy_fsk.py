"""Tests for the binary FSK modem (the IMD's physical layer)."""

import numpy as np
import pytest

from repro.phy.ber import noncoherent_fsk_ber
from repro.phy.fsk import (
    CoherentFSKDemodulator,
    FSKConfig,
    FSKModulator,
    NoncoherentFSKDemodulator,
)
from repro.phy.signal import Waveform


class TestFSKConfig:
    def test_defaults_match_paper(self):
        cfg = FSKConfig()
        assert cfg.deviation_hz == 50e3  # Fig. 4: tones at +/-50 kHz
        assert cfg.samples_per_bit == 6
        assert cfg.modulation_index == pytest.approx(1.0)

    def test_tone_frequencies(self):
        f0, f1 = FSKConfig().tone_frequencies()
        assert f0 == -50e3 and f1 == 50e3

    def test_rejects_non_integer_oversampling(self):
        with pytest.raises(ValueError):
            FSKConfig(bit_rate=100e3, sample_rate=250e3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FSKConfig(bit_rate=-1)

    def test_n_samples(self):
        assert FSKConfig().n_samples(10) == 60


class TestModulator:
    def test_output_length(self):
        w = FSKModulator().modulate([0, 1, 0, 1])
        assert len(w) == 4 * 6

    def test_constant_envelope(self):
        w = FSKModulator().modulate(np.tile([0, 1], 50))
        assert np.allclose(np.abs(w.samples), 1.0)

    def test_amplitude_parameter(self):
        w = FSKModulator().modulate([1, 0], amplitude=0.5)
        assert np.allclose(np.abs(w.samples), 0.5)

    def test_phase_continuity(self):
        """Continuous-phase FSK: no phase jumps at bit boundaries."""
        w = FSKModulator().modulate([0, 1, 1, 0, 1])
        steps = np.abs(np.diff(np.angle(w.samples * np.conj(np.roll(w.samples, 1)))))
        # The per-sample phase step is at most 2*pi*50e3/600e3 ~ 0.52 rad.
        increments = np.angle(w.samples[1:] * np.conj(w.samples[:-1]))
        assert np.max(np.abs(increments)) < 0.6

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            FSKModulator().modulate([0, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            FSKModulator().modulate(np.zeros((2, 2), dtype=int))

    def test_zero_bit_is_negative_tone(self):
        cfg = FSKConfig()
        w = FSKModulator(cfg).modulate([0] * 32)
        spec = np.fft.fftshift(np.fft.fft(w.samples))
        freqs = np.fft.fftshift(np.fft.fftfreq(len(w), 1 / cfg.sample_rate))
        peak = freqs[np.argmax(np.abs(spec))]
        assert peak == pytest.approx(-50e3, abs=5e3)

    def test_one_bit_is_positive_tone(self):
        cfg = FSKConfig()
        w = FSKModulator(cfg).modulate([1] * 32)
        spec = np.fft.fftshift(np.fft.fft(w.samples))
        freqs = np.fft.fftshift(np.fft.fftfreq(len(w), 1 / cfg.sample_rate))
        peak = freqs[np.argmax(np.abs(spec))]
        assert peak == pytest.approx(50e3, abs=5e3)


class TestNoncoherentDemodulator:
    def test_clean_round_trip(self, rng):
        bits = rng.integers(0, 2, size=500)
        w = FSKModulator().modulate(bits)
        decoded = NoncoherentFSKDemodulator().demodulate(w)
        assert np.array_equal(decoded, bits)

    def test_round_trip_with_random_phase(self, rng):
        """Noncoherent detection must not care about carrier phase."""
        bits = rng.integers(0, 2, size=200)
        w = FSKModulator().modulate(bits).scaled(np.exp(1j * 1.234))
        decoded = NoncoherentFSKDemodulator().demodulate(w)
        assert np.array_equal(decoded, bits)

    def test_high_snr_no_errors(self, rng):
        bits = rng.integers(0, 2, size=400)
        w = FSKModulator().modulate(bits).with_noise(1e-4, rng)
        assert NoncoherentFSKDemodulator().bit_error_rate(w, bits) == 0.0

    def test_ber_matches_theory_at_moderate_snr(self, rng):
        """Measured BER should track 0.5 exp(-SNR/2) within sampling error."""
        snr_db = 10.0
        bits = rng.integers(0, 2, size=30_000)
        w = FSKModulator().modulate(bits)
        # Per-bit correlation SNR improves by the samples-per-bit factor;
        # scale the sample-level noise so the detector sees snr_db.
        spb = FSKConfig().samples_per_bit
        noise_power = spb / (10 ** (snr_db / 10.0))
        noisy = w.with_noise(noise_power, rng)
        measured = NoncoherentFSKDemodulator().bit_error_rate(noisy, bits)
        expected = noncoherent_fsk_ber(snr_db)
        assert measured == pytest.approx(expected, rel=0.5, abs=2e-3)

    def test_jammed_at_minus_20db_sir_is_coinflip(self, rng):
        """The paper's security claim: strong noise jamming -> BER ~ 0.5."""
        bits = rng.integers(0, 2, size=5_000)
        w = FSKModulator().modulate(bits)
        jammed = w.with_noise(100.0 * 6, rng)  # SIR ~ -20 dB per bit
        ber = NoncoherentFSKDemodulator().bit_error_rate(jammed, bits)
        assert 0.4 < ber < 0.6

    def test_envelopes_shape(self, rng):
        bits = rng.integers(0, 2, size=32)
        w = FSKModulator().modulate(bits)
        m0, m1 = NoncoherentFSKDemodulator().envelopes(w)
        assert m0.shape == (32,) and m1.shape == (32,)

    def test_demodulate_rejects_overask(self):
        w = FSKModulator().modulate([0, 1])
        with pytest.raises(ValueError):
            NoncoherentFSKDemodulator().demodulate(w, n_bits=3)

    def test_demodulate_rejects_rate_mismatch(self):
        w = Waveform(np.ones(60), sample_rate=1e6)
        with pytest.raises(ValueError):
            NoncoherentFSKDemodulator().demodulate(w)


class TestCoherentDemodulator:
    def test_clean_round_trip(self, rng):
        bits = rng.integers(0, 2, size=64)
        w = FSKModulator().modulate(bits)
        decoded = CoherentFSKDemodulator().demodulate(w)
        assert np.array_equal(decoded, bits)

    def test_beats_noncoherent_at_low_snr(self, rng):
        """Coherent detection is a strictly better genie bound."""
        bits = rng.integers(0, 2, size=20_000)
        w = FSKModulator().modulate(bits)
        spb = FSKConfig().samples_per_bit
        noisy = w.with_noise(spb / 10 ** 0.55, rng)  # ~5.5 dB per bit
        coh = np.mean(CoherentFSKDemodulator().demodulate(noisy) != bits)
        noncoh = np.mean(NoncoherentFSKDemodulator().demodulate(noisy) != bits)
        assert coh <= noncoh + 0.01


class TestBatchedModulation:
    def test_rows_match_single_modulation(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 32))
        mod = FSKModulator()
        batch = mod.modulate_batch(bits, amplitude=0.7)
        for row, row_bits in zip(batch, bits):
            single = mod.modulate(row_bits, amplitude=0.7)
            assert np.allclose(row, single.samples)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            FSKModulator().modulate_batch(np.zeros(8, dtype=int))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            FSKModulator().modulate_batch(np.full((2, 4), 2))


class TestBatchedDemodulation:
    def test_rows_match_single_demodulation(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(4, 64))
        cfg = FSKConfig()
        mod = FSKModulator(cfg)
        demod = NoncoherentFSKDemodulator(cfg)
        noisy = mod.modulate_batch(bits) + 0.3 * (
            rng.standard_normal((4, 64 * 6)) + 1j * rng.standard_normal((4, 64 * 6))
        )
        batch = demod.demodulate_batch(noisy)
        for row, decoded in zip(noisy, batch):
            single = demod.demodulate(Waveform(row, cfg.sample_rate))
            assert np.array_equal(decoded, single)

    def test_recovers_clean_batch(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=(3, 40))
        out = NoncoherentFSKDemodulator().demodulate_batch(
            FSKModulator().modulate_batch(bits)
        )
        assert np.array_equal(out, bits)

    def test_n_bits_limit_enforced(self):
        batch = FSKModulator().modulate_batch(np.zeros((2, 4), dtype=int))
        with pytest.raises(ValueError):
            NoncoherentFSKDemodulator().demodulate_batch(batch, n_bits=5)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            NoncoherentFSKDemodulator().envelopes_batch(np.zeros(12))


class TestCoherentVectorization:
    """The closed-form phase path must pin against the decision-feedback
    loop."""

    @pytest.mark.parametrize(
        "cfg",
        [
            FSKConfig(),  # h = 1, the Medtronic default
            FSKConfig(bit_rate=50e3, deviation_hz=25e3, sample_rate=400e3),  # h=1
            FSKConfig(bit_rate=50e3, deviation_hz=50e3, sample_rate=300e3),  # h=2
        ],
    )
    def test_matches_loop_reference(self, cfg):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=96)
        wave = FSKModulator(cfg).modulate(bits)
        noisy = Waveform(
            wave.samples
            + 0.25
            * (
                rng.standard_normal(len(wave))
                + 1j * rng.standard_normal(len(wave))
            ),
            cfg.sample_rate,
        )
        demod = CoherentFSKDemodulator(cfg)
        assert np.array_equal(
            demod.demodulate(noisy), demod._demodulate_loop(noisy)
        )

    def test_noninteger_index_uses_loop(self):
        cfg = FSKConfig(bit_rate=100e3, deviation_hz=25e3, sample_rate=600e3)  # h=0.5
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, size=32)
        wave = FSKModulator(cfg).modulate(bits)
        out = CoherentFSKDemodulator(cfg).demodulate(wave)
        assert np.array_equal(out, bits)


class TestTemplateCache:
    def test_templates_shared_across_instances(self):
        a = NoncoherentFSKDemodulator()
        b = NoncoherentFSKDemodulator()
        assert a._template0 is b._template0
        assert a._correlators is b._correlators

    def test_templates_read_only(self):
        demod = NoncoherentFSKDemodulator()
        with pytest.raises(ValueError):
            demod._template0[0] = 0.0
