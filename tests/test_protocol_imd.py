"""Tests for the IMD behavioural model."""

import numpy as np
import pytest

from repro.protocol.commands import (
    CommandType,
    TherapySettings,
    encode_therapy_payload,
)
from repro.protocol.imd import CONCERTO, IMDevice, IMDParameters, VIRTUOSO
from repro.protocol.packets import Packet, PacketCodec


@pytest.fixture
def imd(serial) -> IMDevice:
    return IMDevice(serial)


def _command(serial, opcode=CommandType.INTERROGATE, payload=b"") -> Packet:
    return Packet(serial, opcode, 1, payload)


class TestParameters:
    def test_virtuoso_timing_matches_paper(self):
        """Fig. 3: 3.5 ms reply; S6: window [2.8, 3.7] ms, P = 21 ms."""
        assert VIRTUOSO.reply_delay_s == pytest.approx(3.5e-3)
        t1, t2 = VIRTUOSO.reply_window
        assert t1 >= 2.8e-3 - 1e-9
        assert t2 <= 3.7e-3 + 1e-9
        assert VIRTUOSO.max_packet_duration_s == pytest.approx(21e-3)

    def test_concerto_shares_timing(self):
        """S10: 'the two IMDs did not show any significant difference'."""
        assert CONCERTO.reply_delay_s == VIRTUOSO.reply_delay_s

    def test_validation(self):
        with pytest.raises(ValueError):
            IMDParameters(name="bad", reply_delay_s=0.0)
        with pytest.raises(ValueError):
            IMDParameters(name="bad", telemetry_payload_bytes=0)


class TestReceivePath:
    def test_interrogate_gets_telemetry(self, imd, serial):
        reply, delay = imd.handle_packet(_command(serial))
        assert reply.opcode is CommandType.TELEMETRY
        assert len(reply.payload) == imd.parameters.telemetry_payload_bytes

    def test_reply_delay_within_shield_window(self, imd, serial):
        """Every reply latency must fall inside [T1, T2] = [2.8, 3.7] ms --
        the property the shield's jam window depends on."""
        for _ in range(300):
            _, delay = imd.handle_packet(_command(serial))
            assert 2.8e-3 <= delay <= 3.7e-3

    def test_wrong_serial_ignored(self, imd):
        other = bytes(reversed(range(10)))
        assert imd.handle_packet(_command(other)) is None
        assert imd.rejected_packets == 1

    def test_imd_responses_not_treated_as_commands(self, imd, serial):
        """Replayed IMD telemetry must not trigger anything."""
        assert imd.handle_packet(_command(serial, CommandType.TELEMETRY)) is None

    def test_therapy_change_applied_and_acked(self, imd, serial):
        settings = TherapySettings(pacing_rate_bpm=100, shock_energy_j=5)
        packet = _command(serial, CommandType.SET_THERAPY, encode_therapy_payload(settings))
        reply, _ = imd.handle_packet(packet)
        assert reply.opcode is CommandType.ACK
        assert imd.therapy == settings

    def test_malformed_therapy_rejected_silently(self, imd, serial):
        packet = _command(serial, CommandType.SET_THERAPY, b"bad")
        assert imd.handle_packet(packet) is None
        assert imd.therapy == TherapySettings()

    def test_session_open_close(self, imd, serial):
        imd.handle_packet(_command(serial, CommandType.SESSION_OPEN))
        assert imd.in_session
        imd.handle_packet(_command(serial, CommandType.SESSION_CLOSE))
        assert not imd.in_session

    def test_corrupt_bits_discarded(self, imd, serial, codec, rng):
        """S3.1: 'the IMD will discard any message that fails the
        checksum test' -- the property jamming exploits."""
        bits = codec.encode(_command(serial))
        bits[60] ^= 1
        assert imd.handle_bits(bits) is None
        assert imd.rejected_packets == 1
        assert imd.transmissions == 0

    def test_clean_bits_accepted(self, imd, serial, codec):
        result = imd.handle_bits(codec.encode(_command(serial)))
        assert result is not None

    def test_replayed_command_accepted(self, imd, serial, codec):
        """The vulnerability the shield exists to cover: the air protocol
        has no replay protection, so a verbatim copy works."""
        bits = codec.encode(_command(serial))
        assert imd.handle_bits(bits.copy()) is not None
        assert imd.handle_bits(bits.copy()) is not None
        assert imd.accepted_packets == 2


class TestBattery:
    def test_each_reply_costs_energy(self, imd, serial):
        before = imd.battery_spent_j
        imd.handle_packet(_command(serial))
        assert imd.battery_spent_j > before

    def test_depletion_attack_accumulates(self, imd, serial):
        """Fig. 11's attack goal: every triggered reply burns battery."""
        for i in range(50):
            imd.handle_packet(Packet(serial, CommandType.INTERROGATE, i, b""))
        assert imd.transmissions == 50
        assert imd.battery_spent_j == pytest.approx(
            50 * imd.parameters.tx_energy_per_packet_j
        )

    def test_fraction_remaining_decreases(self, imd, serial):
        assert imd.battery_fraction_remaining == 1.0
        imd.handle_packet(_command(serial))
        assert imd.battery_fraction_remaining < 1.0

    def test_ignored_packets_cost_nothing(self, imd):
        other = bytes(reversed(range(10)))
        imd.handle_packet(_command(other))
        assert imd.battery_spent_j == 0.0


class TestTelemetryRecord:
    def test_reflects_current_therapy(self, imd, serial):
        reply, _ = imd.handle_packet(_command(serial))
        assert reply.payload[0] == imd.therapy.pacing_rate_bpm
        assert reply.payload[1] == imd.therapy.shock_energy_j
