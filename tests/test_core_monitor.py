"""Tests for the waveform-level wideband monitor (S7(c))."""

import numpy as np
import pytest

from repro.core.monitor import WidebandMonitor
from repro.phy.channelizer import WidebandChannelizer
from repro.phy.fsk import FSKConfig, FSKModulator
from repro.phy.signal import Waveform
from repro.protocol.commands import CommandType
from repro.protocol.packets import Packet, PacketCodec


@pytest.fixture
def codec():
    return PacketCodec()


@pytest.fixture
def serial():
    return bytes(range(10))


@pytest.fixture
def monitor(codec, serial):
    return WidebandMonitor(codec.identifying_sequence(serial), b_thresh=4)


def _packet_waveform(codec, serial, rng, padding_bits=20):
    packet = Packet(serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
    bits = np.concatenate(
        [rng.integers(0, 2, size=padding_bits), codec.encode(packet)]
    )
    return FSKModulator().modulate(bits)


class TestWidebandMonitor:
    def test_detects_packet_on_each_channel(self, monitor, codec, serial, rng):
        channelizer = monitor.channelizer
        for channel in (0, 4, 9):
            wave = _packet_waveform(codec, serial, rng)
            wideband = channelizer.compose({channel: wave})
            assert monitor.matched_channels(wideband) == [channel]

    def test_simultaneous_multichannel_attack_detected(
        self, monitor, codec, serial, rng
    ):
        """S7(c): transmitting 'in multiple channels simultaneously to
        try to confuse the shield' fails -- every channel is scanned."""
        waves = {
            ch: _packet_waveform(codec, serial, rng) for ch in (1, 5, 8)
        }
        wideband = monitor.channelizer.compose(waves)
        assert monitor.matched_channels(wideband) == [1, 5, 8]

    def test_foreign_traffic_not_matched(self, monitor, codec, rng):
        other_serial = bytes(reversed(range(10)))
        wave = _packet_waveform(codec, other_serial, rng)
        wideband = monitor.channelizer.compose({3: wave})
        assert monitor.matched_channels(wideband) == []

    def test_match_offset_reported(self, monitor, codec, serial, rng):
        wave = _packet_waveform(codec, serial, rng, padding_bits=32)
        wideband = monitor.channelizer.compose({2: wave})
        detection = next(
            d for d in monitor.scan(wideband) if d.channel_index == 2
        )
        assert detection.matched
        # The S_id begins right after the padding.
        assert detection.match_offset_bits == pytest.approx(32, abs=2)

    def test_quiet_channels_squelched(self, monitor, codec, serial, rng):
        wave = _packet_waveform(codec, serial, rng)
        wideband = monitor.channelizer.compose({6: wave})
        detections = monitor.scan(wideband)
        quiet = [d for d in detections if d.channel_index != 6]
        assert all(not d.matched for d in quiet)
        loud = next(d for d in detections if d.channel_index == 6)
        assert loud.channel_power > 10 * max(d.channel_power for d in quiet)

    def test_matches_despite_bit_errors(self, monitor, codec, serial, rng):
        """Noise within b_thresh must not hide the attack."""
        wave = _packet_waveform(codec, serial, rng)
        wideband = monitor.channelizer.compose({7: wave})
        noisy = wideband.with_noise(wave.power() * 0.02, rng)
        assert 7 in monitor.matched_channels(noisy)

    def test_rate_mismatch_rejected(self, codec, serial):
        with pytest.raises(ValueError):
            WidebandMonitor(
                codec.identifying_sequence(serial),
                fsk=FSKConfig(sample_rate=1.2e6, bit_rate=100e3),
            )

    def test_negative_b_thresh_rejected(self, codec, serial):
        with pytest.raises(ValueError):
            WidebandMonitor(codec.identifying_sequence(serial), b_thresh=-1)
