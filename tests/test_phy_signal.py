"""Tests for the Waveform container and dB/power helpers."""

import math

import numpy as np
import pytest

from repro.phy.signal import (
    Waveform,
    combine,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)


class TestUnitConversions:
    def test_db_round_trip(self):
        assert linear_to_db(db_to_linear(13.7)) == pytest.approx(13.7)

    def test_db_to_linear_known_values(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(-30.0) == pytest.approx(1e-3)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_dbm_watts_round_trip(self):
        assert watts_to_dbm(dbm_to_watts(-16.0)) == pytest.approx(-16.0)

    def test_fcc_mics_limit_is_25_microwatts(self):
        assert dbm_to_watts(-16.0) == pytest.approx(25e-6, rel=0.01)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestWaveform:
    def test_power_of_unit_tone(self):
        t = np.arange(100)
        w = Waveform(np.exp(1j * 0.1 * t), sample_rate=1e6)
        assert w.power() == pytest.approx(1.0)

    def test_duration(self):
        w = Waveform(np.zeros(600), sample_rate=600e3)
        assert w.duration == pytest.approx(1e-3)

    def test_empty_waveform_power_is_zero(self):
        assert Waveform(np.zeros(0), 1e6).power() == 0.0

    def test_rejects_2d_samples(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros((2, 2)), 1e6)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros(4), 0.0)

    def test_scaled_to_power(self, rng):
        w = Waveform(rng.standard_normal(512) + 1j * rng.standard_normal(512), 1e6)
        scaled = w.scaled_to_power(0.25)
        assert scaled.power() == pytest.approx(0.25)

    def test_scaled_to_power_rejects_zero_signal(self):
        with pytest.raises(ValueError):
            Waveform(np.zeros(16), 1e6).scaled_to_power(1.0)

    def test_scaled_complex_gain_rotates_and_scales(self):
        w = Waveform(np.ones(8), 1e6)
        out = w.scaled(2j)
        assert out.power() == pytest.approx(4.0)
        assert np.allclose(out.samples, 2j * np.ones(8))

    def test_delayed_prepends_zeros(self):
        w = Waveform(np.ones(4), 1e6).delayed(3)
        assert len(w) == 7
        assert np.all(w.samples[:3] == 0)

    def test_delayed_rejects_negative(self):
        with pytest.raises(ValueError):
            Waveform(np.ones(4), 1e6).delayed(-1)

    def test_padded_to(self):
        w = Waveform(np.ones(4), 1e6).padded_to(10)
        assert len(w) == 10
        assert np.all(w.samples[4:] == 0)

    def test_padded_to_rejects_shrink(self):
        with pytest.raises(ValueError):
            Waveform(np.ones(4), 1e6).padded_to(2)

    def test_frequency_shift_moves_tone(self):
        fs = 1e6
        n = 1000
        t = np.arange(n) / fs
        w = Waveform(np.exp(2j * np.pi * 50e3 * t), fs).frequency_shifted(-50e3)
        # After shifting down by 50 kHz the signal should be DC.
        assert np.allclose(w.samples, w.samples[0], atol=1e-9)

    def test_with_noise_raises_power(self, rng):
        w = Waveform(np.ones(20_000), 1e6)
        noisy = w.with_noise(0.5, rng)
        assert noisy.power() == pytest.approx(1.5, rel=0.05)

    def test_with_zero_noise_is_identity(self, rng):
        w = Waveform(np.ones(16), 1e6)
        assert np.array_equal(w.with_noise(0.0, rng).samples, w.samples)

    def test_with_noise_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            Waveform(np.ones(4), 1e6).with_noise(-1.0, rng)

    def test_snr_db(self):
        w = Waveform(np.ones(16), 1e6)
        assert w.snr_db(0.01) == pytest.approx(20.0)


class TestCombine:
    def test_linear_mixing(self):
        a = Waveform(np.ones(4), 1e6)
        b = Waveform(2 * np.ones(4), 1e6)
        assert np.allclose(combine(a, b).samples, 3 * np.ones(4))

    def test_shorter_padded(self):
        a = Waveform(np.ones(2), 1e6)
        b = Waveform(np.ones(5), 1e6)
        mixed = combine(a, b)
        assert len(mixed) == 5
        assert np.allclose(mixed.samples, [2, 2, 1, 1, 1])

    def test_rejects_rate_mismatch(self):
        with pytest.raises(ValueError):
            combine(Waveform(np.ones(2), 1e6), Waveform(np.ones(2), 2e6))

    def test_rejects_empty_call(self):
        with pytest.raises(ValueError):
            combine()
