"""Smoke tests: the fast example scripts must run end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Only the quick scripts run here (the heavier sweeps --
passive_eavesdropper, active_attack, calibration_walkthrough -- are
exercised through the library calls they share with the benchmarks).
"""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "coexistence.py",
    "full_duplex_lab.py",
    "clinical_session.py",
    "physio_leakage.py",
    "fleet_prevalence.py",
    "live_monitor.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    path = _EXAMPLES / script
    assert path.exists(), f"example {script} is missing"
    # Examples must not depend on argv or cwd.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"example {script} printed nothing"


def test_every_example_has_a_module_docstring():
    for path in sorted(_EXAMPLES.glob("*.py")):
        first = path.read_text().lstrip()
        assert first.startswith('"""'), f"{path.name} lacks a docstring"
