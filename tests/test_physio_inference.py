"""Tests for the attacker-side inference pipeline."""

import numpy as np
import pytest

from repro.physio.codec import WaveformCodec
from repro.physio.ecg import ECGConfig, ECGGenerator
from repro.physio.inference import (
    AttackerInference,
    InferenceConfig,
    beat_f1,
    classify_rhythm,
    detect_beats,
    estimate_heart_rate,
    refine_heart_rate,
    waveform_nrmse,
)
from repro.protocol.commands import CommandType
from repro.protocol.packets import Packet, PacketCodec


def _clean_record(rhythm="normal", seed=0, duration=6.4):
    config = ECGConfig(duration_s=duration)
    batch = ECGGenerator(config).sample_batch(1, seed=seed, rhythms=(rhythm,))
    return batch, config


def _record_bits(batch, codec=None, packet_codec=None):
    """Transmitted frame bits of one record, one row per packet."""
    codec = codec or WaveformCodec()
    packet_codec = packet_codec or PacketCodec()
    payloads = codec.encode_record(batch.samples[0], batch.beat_mask[0])
    return np.stack([
        packet_codec.encode(
            Packet(bytes(range(10)), CommandType.TELEMETRY, i % 256,
                   payloads[i].tobytes())
        )
        for i in range(payloads.shape[0])
    ])


class TestConfigValidation:
    def test_rejects_inverted_hr_range(self):
        with pytest.raises(ValueError):
            InferenceConfig(hr_min_bpm=200.0, hr_max_bpm=40.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            InferenceConfig(peak_threshold=1.5)


class TestEstimators:
    def test_heart_rate_on_clean_sinus(self):
        batch, config = _clean_record(seed=3)
        hr = estimate_heart_rate(
            batch.samples[0], config.sample_rate_hz
        )
        assert hr == pytest.approx(batch.heart_rate_bpm[0], abs=3.0)

    def test_heart_rate_on_tachycardia_avoids_subharmonic(self):
        """At 150 BPM the 2x-RR autocorrelation peak must not win."""
        batch, config = _clean_record(rhythm="tachycardia", seed=5)
        hr = estimate_heart_rate(batch.samples[0], config.sample_rate_hz)
        assert hr == pytest.approx(batch.heart_rate_bpm[0], rel=0.06)

    def test_heart_rate_rejects_too_short_record(self):
        with pytest.raises(ValueError, match="too short"):
            estimate_heart_rate(np.zeros(16), 120.0)

    def test_detect_beats_finds_every_r_peak(self):
        batch, config = _clean_record(seed=7)
        beats = detect_beats(batch.samples[0], config.sample_rate_hz)
        assert beat_f1(batch.beat_times(0), beats) == 1.0

    def test_detect_beats_empty_on_flat_signal(self):
        assert detect_beats(np.zeros(768), 120.0).size == 0

    def test_refine_accepts_consistent_beats(self):
        beats = np.arange(8) * 0.8  # 75 BPM train
        assert refine_heart_rate(76.0, beats) == pytest.approx(75.0)

    def test_refine_snaps_to_a_whole_number_of_periods(self):
        """Disagreeing beat counts are repaired via the autocorr period."""
        beats = np.arange(8) * 0.8  # endpoints span 5.6 s
        snapped = refine_heart_rate(140.0, beats)
        assert snapped == pytest.approx(60.0 * 13 / 5.6)

    def test_refine_keeps_autocorr_when_nothing_agrees(self):
        beats = np.array([0.0, 0.8, 1.6])  # 75 BPM over a 1.6 s span
        assert refine_heart_rate(50.0, beats) == 50.0

    def test_refine_needs_three_beats(self):
        assert refine_heart_rate(70.0, np.array([0.0, 0.8])) == 70.0


class TestRhythmClassifier:
    def test_rate_boundaries(self):
        regular = np.arange(10) * 0.8
        assert classify_rhythm(45.0, regular * (72 / 45)) == "bradycardia"
        assert classify_rhythm(150.0, regular * (72 / 150)) == "tachycardia"
        assert classify_rhythm(72.0, regular) == "normal"

    def test_irregular_rr_reads_as_afib(self, rng):
        rr = 0.65 * np.exp(0.3 * rng.standard_normal(12))
        beats = np.concatenate([[0.0], np.cumsum(rr)])
        assert classify_rhythm(92.0, beats) == "afib"

    def test_single_detection_glitch_does_not_spoof_afib(self):
        """One missed beat (a doubled RR) must not flip normal -> afib."""
        beats = list(np.arange(9) * 0.8)
        del beats[4]  # one missed detection
        assert classify_rhythm(75.0, np.asarray(beats)) == "normal"

    def test_few_beats_fall_back_to_rate(self):
        assert classify_rhythm(72.0, np.array([0.0, 0.8])) == "normal"


class TestMetrics:
    def test_beat_f1_perfect_and_empty(self):
        times = np.array([0.5, 1.3, 2.1])
        assert beat_f1(times, times) == 1.0
        assert beat_f1(times, np.empty(0)) == 0.0
        assert beat_f1(np.empty(0), np.empty(0)) == 1.0

    def test_beat_f1_counts_tolerance(self):
        true = np.array([1.0, 2.0])
        detected = np.array([1.05, 2.5])
        # One hit (within 80 ms), one miss.
        assert beat_f1(true, detected) == pytest.approx(0.5)

    def test_beat_f1_matching_is_one_to_one(self):
        true = np.array([1.0])
        detected = np.array([0.98, 1.02])
        assert beat_f1(true, detected) == pytest.approx(2 / 3)

    def test_nrmse_zero_for_identical(self, rng):
        x = rng.standard_normal(100)
        assert waveform_nrmse(x, x) == 0.0

    def test_nrmse_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            waveform_nrmse(np.zeros(4), np.zeros(5))


class TestAttackerInference:
    def test_clean_bits_recover_vitals(self):
        batch, config = _clean_record(rhythm="afib", seed=11)
        inference = AttackerInference()
        result = inference.infer_record(_record_bits(batch))
        assert result.heart_rate_bpm == pytest.approx(
            batch.heart_rate_bpm[0], abs=1.0
        )
        assert result.rhythm == "afib"
        assert beat_f1(batch.beat_times(0), result.beat_times) == 1.0
        assert waveform_nrmse(
            batch.samples[0], result.samples
        ) < 0.02

    def test_coin_flip_bits_give_chance(self, rng):
        batch, config = _clean_record(seed=13)
        bits = _record_bits(batch)
        coin = rng.integers(0, 2, size=bits.shape)
        result = AttackerInference().infer_record(coin)
        # The one thing chance cannot do is recover the waveform.
        assert waveform_nrmse(batch.samples[0], result.samples) > 0.3

    def test_corrupted_annotations_are_rejected(self, rng):
        """A flipped beat mask must not be trusted as ground truth."""
        batch, config = _clean_record(seed=17)
        codec = WaveformCodec()
        bits = _record_bits(batch, codec)
        inference = AttackerInference(codec)
        # Flip 10% of only the annotation bytes of every packet.
        payload_slice = PacketCodec().payload_slice(codec.payload_size)
        mask_bits_start = payload_slice.start + 8 * codec.window_samples
        corrupted = bits.copy()
        region = corrupted[:, mask_bits_start: payload_slice.stop]
        region ^= rng.random(region.shape) < 0.1
        result = inference.infer_record(corrupted)
        # Waveform-only fallback still nails the heart rate.
        assert result.heart_rate_bpm == pytest.approx(
            batch.heart_rate_bpm[0], abs=2.0
        )

    def test_infer_batch_matches_infer_record(self):
        batch, config = _clean_record(seed=19)
        bits = _record_bits(batch)
        inference = AttackerInference()
        single = inference.infer_record(bits)
        batched = inference.infer_batch(bits[None, :, :])
        assert len(batched) == 1
        assert batched[0].heart_rate_bpm == single.heart_rate_bpm
        assert batched[0].rhythm == single.rhythm
        np.testing.assert_array_equal(
            batched[0].beat_times, single.beat_times
        )

    def test_payloads_from_bits_rejects_vector(self):
        with pytest.raises(ValueError):
            AttackerInference().payloads_from_bits(np.zeros(100, dtype=np.int64))

    def test_modest_ber_still_leaks_heart_rate(self, rng):
        """The headline asymmetry: ~10% BER leaves HR recoverable."""
        errs = []
        for seed in range(12):
            batch, config = _clean_record(seed=100 + seed)
            bits = _record_bits(batch)
            noisy = bits ^ (rng.random(bits.shape) < 0.10)
            result = AttackerInference().infer_record(noisy)
            errs.append(abs(result.heart_rate_bpm - batch.heart_rate_bpm[0]))
        assert float(np.median(errs)) < 5.0
