"""Tests for the batched Monte-Carlo runtime."""

import numpy as np
import pytest

from repro.runtime import (
    SweepExecutor,
    chunk_sizes,
    resolve_workers,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.runtime.seeding import unit_seed_sequence


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(2) == 2

    def test_zero_means_serial(self):
        assert resolve_workers(0) == 1

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_rejects_float_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2.5")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_rejects_negative_env(self, monkeypatch):
        """A negative env value must name the variable, not raise a bare
        'workers cannot be negative' with no hint where it came from."""
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_whitespace_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert resolve_workers() == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_rejects_non_integer_workers(self):
        with pytest.raises(ValueError, match="integer"):
            resolve_workers(2.5)


class TestSweepExecutor:
    def test_serial_map_preserves_order(self):
        assert SweepExecutor(1).map(_square, range(7)) == [x * x for x in range(7)]

    def test_parallel_map_matches_serial(self):
        units = list(range(11))
        serial = SweepExecutor(1).map(_square, units)
        parallel = SweepExecutor(2).map(_square, units)
        assert parallel == serial

    def test_empty_units(self):
        assert SweepExecutor(2).map(_square, []) == []

    def test_parallel_flag(self):
        assert not SweepExecutor(1).parallel
        assert SweepExecutor(3).parallel

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError):
            SweepExecutor(1, chunksize=0)

    def test_imap_streams_in_submission_order(self):
        executor = SweepExecutor(1)
        streamed = executor.imap(_square, range(5))
        assert next(streamed) == 0
        assert list(streamed) == [1, 4, 9, 16]

    def test_pool_session_reuses_one_pool_across_calls(self):
        executor = SweepExecutor(2)
        units = list(range(9))
        with executor.pool_session():
            first_pool = executor._pool
            assert first_pool is not None
            a = list(executor.imap(_square, units))
            assert executor._pool is first_pool  # reused, not respawned
            b = executor.map(_square, units)
        assert executor._pool is None  # torn down on exit
        assert a == b == [x * x for x in units]

    def test_pool_session_noop_in_serial_mode(self):
        executor = SweepExecutor(1)
        with executor.pool_session():
            assert executor._pool is None
            assert executor.map(_square, [3]) == [9]


class _RecordingPool:
    """ProcessPoolExecutor stand-in capturing every map()'s chunksize."""

    calls: list[int] = []

    def __init__(self, max_workers=None):
        pass

    def map(self, fn, units, chunksize=None):
        _RecordingPool.calls.append(chunksize)
        return (fn(u) for u in units)

    def shutdown(self, wait=True):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


class TestChunksizeForwarding:
    """Both parallel paths (one-shot pool and pool_session) must hand the
    constructor's chunksize to every pool map call -- a batching setting
    that silently applies on one entry point but not the other corrupts
    perf comparisons without changing results."""

    @pytest.fixture(autouse=True)
    def _stub_pool(self, monkeypatch):
        _RecordingPool.calls = []
        monkeypatch.setattr(
            "repro.runtime.executor.ProcessPoolExecutor", _RecordingPool
        )

    def test_map_forwards_chunksize_one_shot_pool(self):
        SweepExecutor(2, chunksize=5).map(_square, range(8))
        assert _RecordingPool.calls == [5]

    def test_imap_forwards_chunksize_one_shot_pool(self):
        list(SweepExecutor(2, chunksize=3).imap(_square, range(8)))
        assert _RecordingPool.calls == [3]

    def test_pool_session_forwards_chunksize_every_call(self):
        executor = SweepExecutor(2, chunksize=7)
        with executor.pool_session():
            executor.map(_square, range(8))
            list(executor.imap(_square, range(8)))
        assert _RecordingPool.calls == [7, 7]

    def test_serial_mode_never_touches_the_pool(self):
        SweepExecutor(1, chunksize=9).map(_square, range(8))
        assert _RecordingPool.calls == []


class TestChunksizeValidation:
    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(1, chunksize=0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(2, chunksize=-3)

    def test_rejects_bool(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(1, chunksize=True)

    def test_rejects_float(self):
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(1, chunksize=2.0)

    def test_validated_even_in_serial_mode(self):
        """The same constructor args must be legal at any worker count."""
        with pytest.raises(ValueError, match="chunksize"):
            SweepExecutor(1, chunksize=-1)


class TestChunkSizes:
    def test_none_keeps_one_block(self):
        assert chunk_sizes(40, None) == [40]

    def test_even_split(self):
        assert chunk_sizes(40, 10) == [10, 10, 10, 10]

    def test_remainder_chunk(self):
        assert chunk_sizes(25, 10) == [10, 10, 5]

    def test_oversized_chunk(self):
        assert chunk_sizes(8, 100) == [8]

    def test_zero_trials(self):
        assert chunk_sizes(0, 10) == []

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)

    def test_rejects_negative_trials(self):
        with pytest.raises(ValueError):
            chunk_sizes(-1, None)


class TestSeeding:
    def test_unit_streams_are_reproducible(self):
        a = np.random.default_rng(unit_seed_sequence(7, (3, 1))).random(4)
        b = np.random.default_rng(unit_seed_sequence(7, (3, 1))).random(4)
        assert np.array_equal(a, b)

    def test_unit_streams_differ_across_keys(self):
        a = np.random.default_rng(unit_seed_sequence(7, (3, 1))).random(4)
        b = np.random.default_rng(unit_seed_sequence(7, (3, 2))).random(4)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.random(8) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_accepts_seed_sequence(self):
        root = np.random.SeedSequence(5)
        children = spawn_seed_sequences(root, 2)
        assert len(children) == 2

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)
