"""Extended property-based tests: modems, link budget, channel plan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.link_budget import LinkBudget
from repro.channel.models import DualSlopePathLoss
from repro.crypto.secure_channel import SecureChannel
from repro.mics.channel_plan import ChannelPlan
from repro.phy.gmsk import GMSKDemodulator, GMSKModulator
from repro.phy.ofdm import OFDMConfig, OFDMDemodulator, OFDMModulator
from repro.phy.signal import Waveform

bits_arrays = st.lists(st.integers(0, 1), min_size=8, max_size=128).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


class TestGMSKProperties:
    @settings(max_examples=20, deadline=None)
    @given(bits_arrays)
    def test_round_trip_low_error(self, bits):
        w = GMSKModulator().modulate(bits)
        decoded = GMSKDemodulator().demodulate(w)
        assert np.mean(decoded != bits) < 0.05

    @settings(max_examples=20, deadline=None)
    @given(bits_arrays)
    def test_constant_envelope(self, bits):
        w = GMSKModulator().modulate(bits)
        assert np.allclose(np.abs(w.samples), 1.0, atol=1e-9)


class TestOFDMProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    def test_round_trip_exact(self, n_symbols, seed):
        cfg = OFDMConfig()
        rng = np.random.default_rng(seed)
        grid = OFDMModulator.random_qpsk(n_symbols, cfg.n_subcarriers, rng)
        out = OFDMDemodulator(cfg).demodulate(OFDMModulator(cfg).modulate(grid))
        assert np.allclose(out, grid, atol=1e-9)


class TestPathlossProperties:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.1, max_value=30.0),
        st.floats(min_value=0.1, max_value=30.0),
    )
    def test_monotone_nondecreasing(self, d1, d2):
        model = DualSlopePathLoss()
        lo, hi = sorted((d1, d2))
        assert model.loss_db(lo) <= model.loss_db(hi) + 1e-9

    @settings(max_examples=50)
    @given(st.floats(min_value=0.2, max_value=30.0))
    def test_loss_positive_and_finite(self, d):
        loss = DualSlopePathLoss().loss_db(d)
        assert 0.0 < loss < 200.0


class TestLinkBudgetProperties:
    @settings(max_examples=30)
    @given(st.floats(min_value=-40.0, max_value=20.0))
    def test_rssi_linear_in_tx_power(self, tx_dbm):
        budget = LinkBudget()
        loc = budget.geometry.location(5)
        base = budget.attacker_rx_at_shield_dbm(loc, 0.0)
        assert budget.attacker_rx_at_shield_dbm(loc, tx_dbm) == pytest.approx(
            base + tx_dbm
        )

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=18))
    def test_body_loss_gap_constant(self, index):
        """At every location the IMD path costs exactly the body loss
        more than the shield path."""
        budget = LinkBudget()
        loc = budget.geometry.location(index)
        gap = budget.attacker_rx_at_shield_dbm(
            loc, -16.0
        ) - budget.attacker_rx_at_imd_dbm(loc, -16.0)
        assert gap == pytest.approx(budget.body.loss_db)


class TestChannelPlanProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.floats(0.0, 10.0)),
            min_size=0,
            max_size=15,
        ),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_picked_channel_is_idle(self, occupations, when):
        plan = ChannelPlan()
        for channel, until in occupations:
            plan.occupy(channel, until)
        try:
            choice = plan.pick_channel(when)
        except RuntimeError:
            assert not plan.idle_channels(when)
            return
        assert plan.is_idle(choice, when)


class TestSecureChannelProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=12))
    def test_arbitrary_message_sequences_round_trip(self, messages):
        secret = bytes(range(32))
        a = SecureChannel(secret, is_shield=True)
        b = SecureChannel(secret, is_shield=False)
        for message in messages:
            assert b.receive(a.send(message)) == message
            assert a.receive(b.send(message)) == message
