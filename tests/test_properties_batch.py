"""Property tests (hypothesis): batched fast paths vs scalar references.

PR 1 vectorized the hot paths -- table-driven CRC, closed-form coherent
demodulation, whole-block waveform trials -- each keeping a scalar (or
loop) reference implementation.  These properties pin the fast paths to
their references across random inputs, so a future optimisation that
silently changes a number fails here rather than in a figure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.waveform_lab import PassiveLab
from repro.phy.fsk import CoherentFSKDemodulator, FSKConfig, FSKModulator
from repro.phy.signal import Waveform
from repro.protocol.crc import (
    _crc16_ccitt_bitwise,
    bits_to_bytes,
    crc16_bits,
    crc16_bits_batch,
)

pytestmark = pytest.mark.statistical


bit_matrices = st.integers(1, 8).flatmap(
    lambda rows: st.integers(1, 8).flatmap(
        lambda nbytes: st.lists(
            st.lists(st.integers(0, 1), min_size=8 * nbytes, max_size=8 * nbytes),
            min_size=rows,
            max_size=rows,
        )
    )
).map(lambda rows: np.asarray(rows, dtype=np.int64))


class TestCrcBatchParity:
    @given(bit_matrices)
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_scalar_per_row(self, bits):
        batch = crc16_bits_batch(bits)
        assert batch.dtype == np.uint16
        for row, crc in zip(bits, batch):
            assert int(crc) == crc16_bits(row)

    @given(bit_matrices)
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_bitwise_reference(self, bits):
        """All the way down: vectorized table vs the bit-at-a-time loop."""
        batch = crc16_bits_batch(bits)
        for row, crc in zip(bits, batch):
            assert int(crc) == _crc16_ccitt_bitwise(bits_to_bytes(row))


class TestCoherentDemodParity:
    @given(
        st.integers(0, 2**32 - 1),
        st.lists(st.integers(0, 1), min_size=4, max_size=96),
        st.sampled_from([1, 2, 3]),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_pinned_loop(self, seed, bits, h, noise_amp):
        """Integer modulation index: the closed-form phase rotation must
        reproduce the decision-feedback loop bit for bit, clean or noisy."""
        bits = np.asarray(bits, dtype=np.int64)
        config = FSKConfig(
            bit_rate=100e3, deviation_hz=h * 50e3, sample_rate=600e3
        )
        waveform = FSKModulator(config).modulate(bits)
        rng = np.random.default_rng(seed)
        noisy = Waveform(
            waveform.samples
            + noise_amp
            * (
                rng.standard_normal(len(waveform))
                + 1j * rng.standard_normal(len(waveform))
            ),
            config.sample_rate,
        )
        demod = CoherentFSKDemodulator(config)
        vectorized = demod._demodulate_vectorized(noisy, len(bits), h)
        loop = demod._demodulate_loop(noisy, len(bits))
        assert np.array_equal(vectorized, loop)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_public_demodulate_dispatches_to_vectorized(self, bits):
        bits = np.asarray(bits, dtype=np.int64)
        config = FSKConfig()
        waveform = FSKModulator(config).modulate(bits)
        assert np.array_equal(
            CoherentFSKDemodulator(config).demodulate(waveform), bits
        )


class TestPassiveLabBatchParity:
    @given(
        st.integers(0, 2**16),
        st.floats(min_value=-5.0, max_value=25.0),
        st.sampled_from([1, 5, 9, 14, 18]),
    )
    @settings(max_examples=10, deadline=None)
    def test_single_trial_path_equals_batch_of_one(self, seed, margin, location):
        """run_trial is defined as run_batch(n=1); two identically seeded
        labs must agree bit for bit across random seeds and operating
        points."""
        trial = PassiveLab(seed=seed).run_trial(
            margin, location_index=location
        )
        batch = PassiveLab(seed=seed).run_batch(
            margin, n_packets=1, location_index=location
        )
        assert trial.eavesdropper_ber == batch.eavesdropper_ber[0]
        assert trial.shield_bit_errors == batch.shield_bit_errors[0]
        assert trial.shield_packet_lost == batch.shield_packet_lost[0]

    @given(st.integers(0, 2**16), st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_batch_is_deterministic_per_seed(self, seed, n_packets):
        first = PassiveLab(seed=seed).run_batch(20.0, n_packets=n_packets)
        second = PassiveLab(seed=seed).run_batch(20.0, n_packets=n_packets)
        assert np.array_equal(first.eavesdropper_ber, second.eavesdropper_ber)
        assert np.array_equal(first.shield_bit_errors, second.shield_bit_errors)

    @given(st.integers(0, 2**16))
    @settings(max_examples=6, deadline=None)
    def test_correlation_and_sample_paths_agree_on_decode_quality(self, seed):
        """The correlation-domain fast path and the general sample-level
        path are different exact formulations of the same receivers: in a
        high-SNR, low-jam regime both must decode essentially error-free;
        under crushing jamming both must be near coin flips."""
        from repro.core.jamming import ShapedJammer

        lab = PassiveLab(seed=seed)
        # A mismatched-rate jammer forces the sample-level fallback.
        slow_lab = PassiveLab(seed=seed)
        off_rate_jammer = ShapedJammer.matched_to_fsk(
            50e3, 100e3, 1200e3, rng=slow_lab.rng
        )
        easy_fast = lab.run_batch(-40.0, n_packets=4, score_shield=False)
        easy_slow = slow_lab.run_batch(
            -40.0, n_packets=4, score_shield=False, jammer=off_rate_jammer
        )
        assert easy_fast.mean_eavesdropper_ber() < 0.05
        assert easy_slow.mean_eavesdropper_ber() < 0.05
