"""Tests for the shield's periodic channel probing (S5)."""

import pytest

from repro.experiments.testbed import AttackTestbed


class TestProbing:
    def test_probe_cadence(self):
        """S5: 'every 200 ms in our prototype'."""
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        bed.simulator.run(until=1.05)
        assert bed.shield.probe_count == 5
        probes = bed.air.transmissions_by("shield", kind="probe")
        assert len(probes) == 5
        gaps = [
            b.start_time - a.start_time for a, b in zip(probes, probes[1:])
        ]
        for gap in gaps:
            assert gap == pytest.approx(0.2, abs=1e-6)

    def test_probes_are_low_power(self):
        """S5: low power so others can spatially reuse the medium."""
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        bed.simulator.run(until=0.5)
        for probe in bed.air.transmissions_by("shield", kind="probe"):
            assert probe.tx_power_dbm <= -40.0

    def test_probe_refreshes_cancellation(self):
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        values = set()
        for _ in range(4):
            bed.simulator.run(until=bed.simulator.now + 0.2001)
            values.add(round(bed.shield.full_duplex_rejection_db, 6))
        assert len(values) >= 3  # fresh draws, not a frozen estimate

    def test_stop_probing(self):
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        bed.simulator.run(until=0.45)
        count = bed.shield.probe_count
        bed.shield.stop_probing()
        bed.simulator.run(until=2.0)
        assert bed.shield.probe_count == count

    def test_start_probing_idempotent(self):
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        bed.shield.start_probing()
        bed.simulator.run(until=0.45)
        assert bed.shield.probe_count == 2  # not doubled

    def test_probe_skipped_while_jamming(self):
        """Probes must not interrupt an active defence."""
        bed = AttackTestbed(location_index=1, shield_present=True, seed=42)
        bed.shield.start_probing()
        # Fire attacks timed to collide with every probe tick.
        import numpy as np

        for i in range(3):
            bed.simulator.run(until=0.199 + 0.2 * i)
            bed.attacker.send_packet(bed.interrogate_packet())
            bed.simulator.run(until=bed.simulator.now + 0.01)
        # Jamming happened; no probe *started* while a jam was active
        # (a jam may begin moments after a probe started -- benign).
        jams = bed.air.transmissions_by("shield", kind="jam")
        probes = bed.air.transmissions_by("shield", kind="probe")
        assert jams
        for probe in probes:
            for jam in jams:
                assert not (
                    jam.start_time <= probe.start_time
                    and (jam.end_time is None or probe.start_time < jam.end_time)
                )

    def test_imd_ignores_probes(self):
        bed = AttackTestbed(location_index=5, shield_present=True, seed=42)
        bed.shield.start_probing()
        bed.simulator.run(until=1.0)
        assert bed.imd.transmissions == 0
        assert bed.imd.accepted_packets == 0
