"""Tests for the design-choice ablations."""

import pytest

from repro.experiments.ablation import (
    antenna_ratio_sweep,
    b_thresh_sweep,
    detection_window_sweep,
    digital_cancellation_sweep,
)


class TestBThreshSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return b_thresh_sweep(n_trials=300)

    def test_false_negatives_fall_with_threshold(self, points):
        fn = [p.false_negative_rate for p in points]
        assert fn[0] > fn[-1]

    def test_false_positives_stay_negligible_through_4(self, points):
        """At the paper's b_thresh = 4, a 104-bit sequence still never
        matches random traffic -- coexistence is safe."""
        for p in points:
            if p.b_thresh <= 4:
                assert p.false_positive_rate == 0.0

    def test_chosen_threshold_catches_weak_attackers(self, points):
        at_4 = next(p for p in points if p.b_thresh == 4)
        at_0 = next(p for p in points if p.b_thresh == 0)
        assert at_4.false_negative_rate < at_0.false_negative_rate


class TestDigitalCancellationSweep:
    def test_digital_stage_earns_its_place(self):
        losses = digital_cancellation_sweep(
            gains_db=(0.0, 8.0), n_packets=80
        )
        # Antenna-only loses markedly more packets than the shipped
        # configuration at the +20 dB operating point.
        assert losses[0.0] > losses[8.0]
        assert losses[8.0] < 0.05


class TestDetectionWindowSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return detection_window_sweep()

    def test_coverage_shrinks_with_window(self, points):
        coverage = [p.jammed_fraction_of_packet for p in points]
        assert all(a >= b for a, b in zip(coverage, coverage[1:]))

    def test_full_window_never_false_matches(self, points):
        full = next(p for p in points if p.window_bits == 104)
        assert full.false_match_rate == 0.0

    def test_full_window_still_covers_packet_tail(self, points):
        full = next(p for p in points if p.window_bits == 104)
        assert full.jammed_fraction_of_packet > 0.2


class TestAntennaRatioSweep:
    def test_cancellation_insensitive_to_placement(self):
        """The wearability claim: across a 35 dB range of antenna
        coupling the achieved cancellation moves by only a few dB."""
        results = antenna_ratio_sweep(n_runs=40)
        values = list(results.values())
        assert max(values) - min(values) < 6.0
        assert all(v > 25.0 for v in values)
