"""Tests for the multi-antenna eavesdropper (S3.2's MIMO argument).

The paper argues a MIMO eavesdropper cannot separate the IMD's signal
from the jam when the shield sits much less than half a wavelength from
the implant, because the two channel vectors are then highly correlated.
We reproduce the *mechanism* and its gradient faithfully -- and also the
honest caveat the follow-on literature established: given a static
channel and a generous SNR, the jam-subspace projection attack recovers
part of the signal even at high correlation.  The shield's protection
against array eavesdroppers is therefore strongest exactly where the
paper's evaluation lives: realistic eavesdropper SNRs at stand-off
distances.
"""

import numpy as np
import pytest

from repro.adversary.mimo import (
    MIMOEavesdropper,
    correlated_channel_pair,
    jakes_correlation,
)
from repro.core.jamming import ShapedJammer


@pytest.fixture(scope="module")
def jammer():
    return ShapedJammer.matched_to_fsk(
        50e3, 100e3, 600e3, rng=np.random.default_rng(5)
    )


def _mean_ber(separation_m, snr_db, jammer, n_bits=500, n_trials=5, seed=9):
    rng = np.random.default_rng(seed)
    eve = MIMOEavesdropper(n_antennas=2, rng=rng)
    total = 0.0
    for _ in range(n_trials):
        bits = rng.integers(0, 2, size=n_bits)
        jam = jammer.generate(n_bits * 6)
        total += eve.attack(
            bits, jam, source_separation_m=separation_m, snr_db=snr_db
        ).bit_error_rate
    return total / n_trials


class TestJakesCorrelation:
    def test_colocated_fully_correlated(self):
        assert jakes_correlation(0.0) == pytest.approx(1.0)

    def test_high_at_centimetres(self):
        """At necklace distances the channels are nearly collinear."""
        assert jakes_correlation(0.02) > 0.99
        assert jakes_correlation(0.05) > 0.95

    def test_decorrelated_beyond_half_wavelength(self):
        """The S3.2 threshold: ~37 cm at 403 MHz."""
        assert abs(jakes_correlation(0.3715 / 2 * 2)) < 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            jakes_correlation(-1.0)
        with pytest.raises(ValueError):
            jakes_correlation(1.0, wavelength_m=0.0)


class TestCorrelatedChannels:
    def test_statistical_correlation(self, rng):
        n_antennas = 2
        samples = []
        for _ in range(3000):
            a, b = correlated_channel_pair(n_antennas, 0.8, rng)
            samples.append(np.vdot(a, b))
        # E[a^H b] = rho * E[|a|^2] = rho * n_antennas for unit-power entries.
        measured = np.mean(samples).real / n_antennas
        assert measured == pytest.approx(0.8, abs=0.05)

    def test_unit_power(self, rng):
        powers = [
            np.mean(np.abs(correlated_channel_pair(4, 0.5, rng)[1]) ** 2)
            for _ in range(2000)
        ]
        assert np.mean(powers) == pytest.approx(1.0, abs=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            correlated_channel_pair(0, 0.5, rng)
        with pytest.raises(ValueError):
            correlated_channel_pair(2, 1.5, rng)


class TestMIMOAttack:
    def test_separated_sources_are_separable(self, jammer):
        """With the sources half a wavelength apart (the configuration
        the paper warns against), the array nulls the jam and reads the
        telemetry even at modest SNR."""
        ber = _mean_ber(separation_m=0.37, snr_db=10.0, jammer=jammer)
        assert ber < 0.05

    def test_colocated_sources_resist_at_standoff_snr(self, jammer):
        """Worn on the implant (2 cm), the correlated channels leave so
        little signal outside the jam subspace that an eavesdropper at
        stand-off SNR (~6 dB: the testbed's far NLOS locations) stays
        close to guessing."""
        ber = _mean_ber(separation_m=0.02, snr_db=6.0, jammer=jammer)
        assert ber > 0.25

    def test_protection_degrades_with_separation(self, jammer):
        """The design gradient behind 'wear it close': BER falls as the
        shield drifts from the implant."""
        close = _mean_ber(0.02, 6.0, jammer)
        mid = _mean_ber(0.12, 6.0, jammer)
        far = _mean_ber(0.37, 6.0, jammer)
        assert close > far + 0.1
        assert close > mid >= far - 0.02

    def test_high_snr_static_channel_caveat(self, jammer):
        """The honest caveat (cf. later friendly-jamming analyses): at a
        lab-grade 40 dB SNR over a perfectly static channel, projection
        recovers the signal even at 2 cm separation.  Real deployments
        rely on eavesdroppers not getting that vantage."""
        ber = _mean_ber(separation_m=0.02, snr_db=40.0, jammer=jammer)
        assert ber < 0.1

    def test_jam_rejection_reported(self, jammer):
        rng = np.random.default_rng(3)
        eve = MIMOEavesdropper(n_antennas=2, rng=rng)
        bits = rng.integers(0, 2, size=300)
        result = eve.attack(bits, jammer.generate(1800), 0.37, snr_db=30.0)
        assert result.jam_rejection_db > 20.0

    def test_needs_two_antennas(self):
        with pytest.raises(ValueError):
            MIMOEavesdropper(n_antennas=1)

    def test_short_jam_rejected(self, jammer):
        rng = np.random.default_rng(4)
        eve = MIMOEavesdropper(rng=rng)
        with pytest.raises(ValueError):
            eve.attack(np.zeros(100, dtype=int), jammer.generate(60), 0.1)
