"""Distributed acceptance: 10,000 patients across crash-prone workers.

The ISSUE's acceptance bar: a 10k-patient fleet campaign run by 2+
``python -m repro worker`` processes against one SQLite cache root must
reduce bit-identically to the serial run -- including after one worker
is SIGKILLed mid-campaign, whose in-flight unit must be re-queued by
lease expiry and completed by a surviving worker.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.statistical]

_REPO = Path(__file__).resolve().parent.parent

_OVERRIDES = [
    "fleet-attack-prevalence",
    "--patients", "10000", "--trials", "1", "--chunk-size", "200",
    "--cache-backend", "sqlite",
]


def _spawn(verb: str, cache_dir: Path, *extra: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", verb, *_OVERRIDES,
         "--cache-dir", str(cache_dir), *extra],
        cwd=_REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _query_one(cache_dir: Path, sql: str) -> int:
    path = cache_dir / "results.sqlite"
    if not path.exists():
        return 0
    try:
        with sqlite3.connect(path, timeout=5.0) as conn:
            return conn.execute(sql).fetchone()[0]
    except sqlite3.Error:
        return 0


def _population_point(stdout: str) -> dict:
    payload = json.loads(stdout)
    (point,) = payload["points"]
    return point


class TestDistributedTenThousandPatients:
    def test_sigkill_worker_lease_requeue_and_serial_parity(self, tmp_path):
        serial_dir = tmp_path / "serial"
        dist_dir = tmp_path / "dist"

        # 1. The serial golden (one process, no queue).
        serial = _spawn("run", serial_dir, "--format", "json")

        # 2. A first worker with short leases; SIGKILL it once it is
        #    demonstrably mid-campaign: at least one unit persisted and
        #    one lease in flight (a unit being evaluated right now).
        victim = _spawn("worker", dist_dir, "--worker-id", "doomed",
                        "--lease", "3", "--poll", "0.05",
                        "--idle-timeout", "300")
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail(
                    "worker exited before it could be killed: "
                    + victim.communicate()[1]
                )
            cached = _query_one(dist_dir, "SELECT COUNT(*) FROM units")
            leased = _query_one(dist_dir, "SELECT COUNT(*) FROM leases")
            if cached >= 1 and leased >= 1:
                victim.kill()  # SIGKILL: no lease release, no cleanup
                break
            time.sleep(0.01)
        victim.wait(timeout=60)
        assert victim.returncode == -signal.SIGKILL
        # The dead worker's claim survives it: an orphan lease that only
        # expiry-based reaping can clear.
        assert _query_one(dist_dir, "SELECT COUNT(*) FROM leases") >= 1
        partial = _query_one(dist_dir, "SELECT COUNT(*) FROM units")

        # 3. Two survivors plus a coordinator share the same cache
        #    root.  The coordinator only plans/waits/reduces; the
        #    survivors must re-claim the orphaned unit once its 3 s
        #    lease expires and finish the remaining ~50 units.
        w2 = _spawn("worker", dist_dir, "--worker-id", "survivor-2",
                    "--lease", "10", "--poll", "0.05",
                    "--idle-timeout", "300")
        w3 = _spawn("worker", dist_dir, "--worker-id", "survivor-3",
                    "--lease", "10", "--poll", "0.05",
                    "--idle-timeout", "300")
        coordinator = _spawn("run", dist_dir, "--distributed",
                             "--wait-timeout", "600", "--format", "json")
        coord_out, coord_err = coordinator.communicate(timeout=900)
        assert coordinator.returncode == 0, coord_err
        for worker in (w2, w3):
            out, err = worker.communicate(timeout=300)
            assert worker.returncode == 0, err

        serial_out, serial_err = serial.communicate(timeout=900)
        assert serial.returncode == 0, serial_err

        # 4. Bit-identical population point, distributed vs serial.
        assert _population_point(coord_out) == _population_point(serial_out)
        payload = json.loads(coord_out)
        assert payload["units"]["total"] == 50
        # The campaign made progress both before and after the kill.
        assert 0 < partial < 50

        # 5. The queue drained completely: no rows, no leases left.
        assert _query_one(dist_dir, "SELECT COUNT(*) FROM queue") == 0
        assert _query_one(dist_dir, "SELECT COUNT(*) FROM leases") == 0
        assert _query_one(dist_dir, "SELECT COUNT(*) FROM units") == 50
