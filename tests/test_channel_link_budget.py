"""Tests for the paper's SINR equations (6)-(9) as implemented."""

import pytest

from repro.channel.link_budget import (
    FCC_MICS_EIRP_DBM,
    LinkBudget,
    adversary_sinr_db,
    shield_sinr_db,
)


@pytest.fixture
def budget() -> LinkBudget:
    return LinkBudget()


class TestEquations:
    def test_eq9_sinr_gap_is_cancellation(self):
        """Eq. 9: SINR_S = SINR_A + G (noise negligible)."""
        kwargs = dict(imd_power_dbm=-16.0, body_loss_db=28.0, jamming_power_dbm=-30.0)
        sinr_a = adversary_sinr_db(noise_dbm=-120.0, **kwargs)
        sinr_s = shield_sinr_db(cancellation_db=32.0, noise_dbm=-120.0, **kwargs)
        assert sinr_s - sinr_a == pytest.approx(32.0, abs=0.2)

    def test_eq7_no_location_term(self):
        """Eq. 7 contains no pathloss-to-adversary: verified structurally
        by the function signature, and numerically across locations in
        TestLocationIndependence."""
        a = adversary_sinr_db(-16.0, 28.0, -30.0, -120.0)
        b = adversary_sinr_db(-16.0, 28.0, -30.0, -120.0)
        assert a == b

    def test_jamming_dominates_noise(self):
        quiet = adversary_sinr_db(-16.0, 28.0, -200.0, -106.0)
        jammed = adversary_sinr_db(-16.0, 28.0, -30.0, -106.0)
        assert jammed < quiet - 30


class TestLocationIndependence:
    def test_eavesdropper_sinr_spread_under_1db_where_jam_dominates(self, budget):
        """The operational form of eq. 7: wherever the jamming dominates
        the eavesdropper's thermal noise (every location out to ~20 m),
        the SINR is the same to within 1 dB regardless of distance."""
        jam_tx = budget.passive_jam_tx_dbm()
        jam_limited = [
            loc
            for loc in budget.geometry.locations
            if jam_tx - budget.geometry.air_loss_to_shield_db(loc)
            > budget.receiver_noise_dbm + 10.0
        ]
        assert len(jam_limited) >= 10  # covers the bulk of the testbed
        sinrs = [budget.eavesdropper_sinr_db(loc, jam_tx) for loc in jam_limited]
        assert max(sinrs) - min(sinrs) < 1.0

    def test_eavesdropper_sinr_deeply_negative_everywhere(self, budget):
        """At the +20 dB operating point every eavesdropper sits at or
        below ~-14 dB SINR -- far inside the coin-flip regime.  Beyond
        the jam-limited region its own noise floor pushes SINR even
        lower, so confidentiality only improves with distance."""
        jam_tx = budget.passive_jam_tx_dbm()
        for loc in budget.geometry.locations:
            assert budget.eavesdropper_sinr_db(loc, jam_tx) < -13.0


class TestReceivedPowers:
    def test_imd_rx_monotone_with_location(self, budget):
        powers = [
            budget.imd_rx_at_location_dbm(loc) for loc in budget.geometry.locations
        ]
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_shield_hears_imd_better_than_any_adversary(self, budget):
        at_shield = budget.imd_rx_at_shield_dbm()
        for loc in budget.geometry.locations:
            assert at_shield > budget.imd_rx_at_location_dbm(loc)

    def test_attacker_rssi_at_shield_excludes_body_loss(self, budget):
        loc = budget.geometry.location(1)
        at_shield = budget.attacker_rx_at_shield_dbm(loc, -16.0)
        at_imd = budget.attacker_rx_at_imd_dbm(loc, -16.0)
        assert at_shield - at_imd == pytest.approx(budget.body.loss_db)

    def test_unprotected_range_boundary_near_14m(self, budget):
        """Calibration check: an FCC adversary's SNR at the IMD crosses
        the decode threshold (~10 dB effective) around location 8 (14 m),
        matching Fig. 11."""
        snr_8 = budget.imd_snr_from_attacker_db(
            budget.geometry.location(8), FCC_MICS_EIRP_DBM
        )
        snr_9 = budget.imd_snr_from_attacker_db(
            budget.geometry.location(9), FCC_MICS_EIRP_DBM
        )
        assert 8.0 < snr_8 < 14.0
        assert snr_9 < snr_8 - 4

    def test_fcc_attacker_cannot_beat_jamming_anywhere(self, budget):
        """Fig. 11/12 'shield present' row: at every location the
        FCC-power adversary's SIR at the IMD is below any plausible
        decode threshold."""
        for loc in budget.geometry.locations:
            sir = budget.imd_sir_attacker_vs_jam_db(loc, FCC_MICS_EIRP_DBM)
            assert sir < 0.0

    def test_highpower_attacker_beats_jamming_only_nearby(self, budget):
        """Fig. 13 'shield present' row: a +30 dB EIRP advantage wins the
        capture race only at the closest locations."""
        eirp = FCC_MICS_EIRP_DBM + 30.0
        sir_1 = budget.imd_sir_attacker_vs_jam_db(budget.geometry.location(1), eirp)
        sir_8 = budget.imd_sir_attacker_vs_jam_db(budget.geometry.location(8), eirp)
        assert sir_1 > 10.0
        assert sir_8 < 0.0

    def test_passive_jam_tx_below_fcc_limit(self, budget):
        """S10.1(b): the +20 dB jamming margin still complies with FCC
        rules because the IMD's received power is so low."""
        assert budget.passive_jam_tx_dbm() < FCC_MICS_EIRP_DBM

    def test_shield_decode_sinr_comfortable(self, budget):
        """Eq. 8 at the operating point: ~20 dB SINR at the shield."""
        jam_rx = budget.imd_rx_at_shield_dbm() + 20.0
        sinr = budget.shield_decode_sinr_db(jam_rx, cancellation_db=40.0)
        assert sinr == pytest.approx(20.0, abs=1.0)
