"""Campaign-layer tests for the physio scenario kind.

Fast tests cover spec validation, planning, reduction, estimator
reconstruction, the CLI rendering, and cache resume equivalence; the
``slow``-marked test SIGKILLs a real ``python -m repro run`` mid-flight
and checks the resumed campaign is bit-identical to an uninterrupted
one (the acceptance contract of ``physio-leakage-shielded``).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import CampaignRunner, registry
from repro.campaigns.cli import main as cli_main
from repro.campaigns.runner import plan_scenario_units
from repro.campaigns.spec import Scenario
from repro.stats.adaptive import (
    AdaptivePolicy,
    AdaptiveScheduler,
    metric_estimator,
    scenario_metrics,
)
from repro.stats.estimator import MeanEstimator, SequentialEstimator
from repro.stats.validation import cells_from_result

_REPO = Path(__file__).resolve().parent.parent

PHYSIO_SCENARIOS = (
    "physio-leakage-by-location",
    "physio-leakage-shielded",
    "physio-rhythm-privacy",
)


def _small_physio(**changes) -> Scenario:
    base = dict(
        name="physio-test",
        kind="physio",
        shield_present=False,
        rhythm="normal",
        location_indices=(1, 12),
        n_trials=3,
        seed=11,
    )
    base.update(changes)
    return Scenario(**base)


class TestSpec:
    def test_builtin_physio_scenarios_registered(self):
        for name in PHYSIO_SCENARIOS:
            scenario = registry.get(name)
            assert scenario.kind == "physio"
            assert registry.expectations_for(name)

    def test_rejects_unknown_rhythm(self):
        with pytest.raises(ValueError, match="unknown rhythm"):
            _small_physio(rhythm="sinus")

    def test_rejects_bad_packets_per_record(self):
        with pytest.raises(ValueError, match="packets_per_record"):
            _small_physio(packets_per_record=0)

    def test_hash_covers_physio_axes(self):
        base = _small_physio()
        assert base.scenario_hash() != _small_physio(rhythm="mixed").scenario_hash()
        assert base.scenario_hash() != _small_physio(
            shield_present=True
        ).scenario_hash()
        assert base.scenario_hash() != _small_physio(
            packets_per_record=8
        ).scenario_hash()
        # Display fields are not identity.
        assert base.scenario_hash() == _small_physio(
            title="renamed"
        ).scenario_hash()

    def test_override_narrows_locations(self):
        narrowed = registry.get("physio-leakage-by-location").override(
            location_indices=(1, 2)
        )
        assert narrowed.grid_size() == 2

    def test_summary_mentions_condition(self):
        assert "no shield" in _small_physio().summary()
        assert "shield at +20" in _small_physio(shield_present=True).summary()


class TestPlanningAndReduction:
    def test_plan_is_deterministic_and_chunked(self):
        scenario = _small_physio(chunk_size=2)
        units = plan_scenario_units(scenario)
        assert [u.coords["n_trials"] for u in units] == [2, 1, 2, 1]
        assert [u.key for u in units] == [
            u.key for u in plan_scenario_units(scenario)
        ]

    def test_round_units_never_alias_fixed_units(self):
        scenario = _small_physio()
        fixed = {u.key for u in plan_scenario_units(scenario)}
        round0 = {
            u.key
            for u in plan_scenario_units(
                scenario, positions=[0], n_trials=3, round_index=0
            )
        }
        assert not fixed & round0

    def test_reduction_merges_chunks_bit_identically(self):
        whole = CampaignRunner(_small_physio(), persist=False).run()
        sharded = CampaignRunner(
            _small_physio(chunk_size=2), persist=False
        ).run()
        assert whole.value_key == "hr_abs_error"
        for a, b in zip(whole.points, sharded.points):
            assert a["axis"] == b["axis"]
            assert a["n_records"] == b["n_records"] == 3

    def test_points_carry_metrics_and_moments(self):
        result = CampaignRunner(_small_physio(), persist=False).run()
        point = result.points[0]
        for key in (
            "hr_abs_error", "hr_error_vs_chance", "hr_abs_error_clear",
            "beat_f1", "rhythm_accuracy", "waveform_nrmse", "ber",
            "hr_err_sqsum", "rhythm_correct",
        ):
            assert key in point
        # Location 1, no shield: clean content leak.
        assert point["hr_abs_error"] < 1.0
        assert point["rhythm_accuracy"] == 1.0

    def test_cache_resume_is_bit_identical(self, tmp_path):
        scenario = _small_physio(chunk_size=1)
        uninterrupted = CampaignRunner(
            scenario, cache_dir=tmp_path / "a"
        ).run()
        partial = CampaignRunner(scenario, cache_dir=tmp_path / "b")
        assert partial.materialize(limit=3) == 3
        resumed = CampaignRunner(scenario, cache_dir=tmp_path / "b").run()
        assert resumed.cached_units == 3
        assert json.dumps(resumed.points, sort_keys=True) == json.dumps(
            uninterrupted.points, sort_keys=True
        )


class TestStatsIntegration:
    def test_scenario_metrics(self):
        metrics = scenario_metrics("physio")
        assert "hr_abs_error" in metrics
        assert "rhythm_accuracy" in metrics
        assert len(metrics) == 6

    def test_metric_estimator_families(self):
        assert isinstance(metric_estimator("rhythm_accuracy"), SequentialEstimator)
        gap = metric_estimator("hr_error_vs_chance")
        assert isinstance(gap, MeanEstimator) and gap.bounds is None
        err = metric_estimator("hr_abs_error")
        assert err.bounds[0] == 0.0
        with pytest.raises(ValueError, match="unknown metric"):
            metric_estimator("qt-interval")

    def test_cells_from_result_rebuild_exact_moments(self):
        result = CampaignRunner(_small_physio(), persist=False).run()
        cells = cells_from_result(result)
        point = result.points[0]
        estimators = cells[0].estimators
        assert set(estimators) == set(scenario_metrics("physio"))
        assert estimators["hr_abs_error"].estimate == pytest.approx(
            point["hr_abs_error"]
        )
        assert estimators["rhythm_accuracy"].trials == point["n_records"]

    def test_adaptive_scheduler_absorbs_physio_units(self):
        scenario = _small_physio(location_indices=(1,))
        policy = AdaptivePolicy(min_trials=2, round_size=2, max_trials=4)
        run = AdaptiveScheduler(scenario, policy=policy, persist=False).run()
        (cell,) = run.cells
        assert cell.trials == 4
        assert cell.estimators["hr_abs_error"].count == 4
        assert cell.estimators["rhythm_accuracy"].trials == 4

    def test_adaptive_matches_fresh_absorb_from_cache(self, tmp_path):
        scenario = _small_physio(location_indices=(1,))
        policy = AdaptivePolicy(min_trials=2, round_size=2, max_trials=4)
        first = AdaptiveScheduler(
            scenario, policy=policy, cache_dir=tmp_path
        ).run()
        second = AdaptiveScheduler(
            scenario, policy=policy, cache_dir=tmp_path
        ).run()
        assert second.computed_units == 0
        assert second.cached_units == first.computed_units
        for a, b in zip(first.cells, second.cells):
            assert a.estimators["hr_abs_error"].total == pytest.approx(
                b.estimators["hr_abs_error"].total
            )


class TestCli:
    def test_run_renders_physio_table(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = cli_main([
            "run", "physio-leakage-by-location",
            "--trials", "2", "--locations", "1",
            "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "HR error / vs chance" in out
        assert "heart rate leaks" in out

    def test_run_json_payload_has_physio_points(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = cli_main([
            "run", "physio-leakage-shielded",
            "--trials", "2", "--locations", "1",
            "--no-cache", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value_key"] == "hr_abs_error"
        assert payload["points"][0]["n_records"] == 2

    def test_validate_smoke_budget_runs_physio(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = cli_main([
            "validate", "physio-rhythm-privacy",
            "--budget", "smoke", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "physio-rhythm-privacy" in out


@pytest.mark.slow
@pytest.mark.statistical
class TestFullLeakageSweep:
    """Nightly-only: the full physio grids at their registered budgets."""

    def test_leakage_profile_is_monotone_in_link_quality(self):
        scenario = registry.get("physio-leakage-by-location")
        result = CampaignRunner(scenario, persist=False).run()
        by_axis = {p["axis"]: p for p in result.points}
        # Clean link: clinical-grade leak at every near location.
        for axis in range(1, 11):
            assert by_axis[axis]["hr_abs_error"] < 2.0
            assert by_axis[axis]["beat_f1"] > 0.95
        # Past the NLOS knee the content dies with the link.
        for axis in (17, 18):
            assert by_axis[axis]["hr_abs_error"] > 10.0
            assert by_axis[axis]["ber"] > 0.45

    def test_shielded_grid_sits_at_chance_everywhere(self):
        scenario = registry.get("physio-leakage-shielded")
        result = CampaignRunner(scenario, persist=False).run()
        for point in result.points:
            assert point["hr_abs_error"] > 25.0
            assert abs(point["hr_error_vs_chance"]) < 15.0
            assert point["rhythm_accuracy"] < 0.5


@pytest.mark.slow
class TestSigkillResume:
    """The acceptance contract: SIGKILL mid-campaign, resume bit-identical."""

    ARGS = [
        "run", "physio-leakage-shielded",
        "--trials", "12", "--chunk-size", "2", "--locations", "1,9,17",
        "--format", "json",
    ]

    def _spawn(self, cache_dir: Path) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *self.ARGS,
             "--cache-dir", str(cache_dir)],
            cwd=_REPO, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )

    def _run_to_completion(self, cache_dir: Path) -> dict:
        proc = self._spawn(cache_dir)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        return json.loads(out)

    def test_sigkill_mid_campaign_resumes_bit_identically(self, tmp_path):
        reference = self._run_to_completion(tmp_path / "uninterrupted")

        killed_dir = tmp_path / "killed"
        victim = self._spawn(killed_dir)
        # Let a few units land on disk, then kill without cleanup.
        deadline = time.time() + 60
        scenario_dirs = []
        while time.time() < deadline:
            scenario_dirs = [
                p for p in killed_dir.glob("*/*.json")
                if p.name != "scenario.json"
            ]
            if len(scenario_dirs) >= 3 or victim.poll() is not None:
                break
            time.sleep(0.05)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
            assert len(scenario_dirs) >= 1, "kill landed before any unit cached"

        resumed = self._run_to_completion(killed_dir)
        assert resumed["points"] == reference["points"]
        assert resumed["units"]["from_cache"] >= len(scenario_dirs)
