"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.fsk import FSKConfig
from repro.protocol.packets import PacketCodec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests must not depend on global random state."""
    return np.random.default_rng(1234)


@pytest.fixture
def fsk_config() -> FSKConfig:
    return FSKConfig()


@pytest.fixture
def codec() -> PacketCodec:
    return PacketCodec()


@pytest.fixture
def serial() -> bytes:
    return bytes(range(10))
