"""Failure-injection tests: what breaks when components degrade.

Each test damages one component and checks that the system fails the way
the design predicts -- protection degrades in the documented direction,
and no failure silently *helps* an adversary more than analysis says it
should.
"""

import numpy as np
import pytest

from repro.core.config import ShieldConfig
from repro.core.detector import ActiveDetector
from repro.core.policy import JamWindowPolicy
from repro.core.relay import ProgrammerLink, ShieldRelay
from repro.crypto.aead import AuthenticationError
from repro.crypto.pairing import OutOfBandPairing
from repro.experiments.testbed import AttackTestbed
from repro.experiments.waveform_lab import PassiveLab
from repro.protocol.commands import CommandType
from repro.protocol.imd import IMDParameters
from repro.protocol.packets import Packet


class TestDegradedCancellation:
    def test_poor_cancellation_costs_decode_not_protection(self):
        """A shield whose antidote only reaches ~12 dB still jams the
        eavesdropper perfectly -- it just starts losing its *own*
        packets.  Confidentiality never depends on the cancellation."""
        lab = PassiveLab(
            shield_config=ShieldConfig(
                antenna_cancellation_db=12.0,
                antenna_cancellation_std_db=1.0,
                estimation_error_std=0.25,
                digital_cancellation_db=0.0,
            ),
            seed=5,
        )
        eve_bers, losses = [], 0
        for _ in range(30):
            trial = lab.run_trial(20.0, use_digital=False)
            eve_bers.append(trial.eavesdropper_ber)
            losses += trial.shield_packet_lost
        assert np.mean(eve_bers) > 0.4  # adversary still blind
        assert losses > 5  # the shield itself suffers


class TestMisconfiguredDetector:
    def test_wrong_serial_shield_protects_nothing(self):
        """A shield calibrated against the wrong device ID watches the
        attack sail past -- configuration is part of the TCB."""
        bed = AttackTestbed(location_index=1, shield_present=True, seed=9)
        wrong_serial = bytes(reversed(range(10)))
        bed.shield.detector = ActiveDetector(
            bed.codec.identifying_sequence(wrong_serial),
            b_thresh=4,
            p_thresh_dbm=-17.4,
            anomaly_rssi_dbm=-30.0,
        )
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.imd_responded
        assert not outcome.shield_jammed

    def test_zero_b_thresh_still_catches_clean_headers(self):
        """b_thresh = 0 is strict but not broken: noiseless attack
        headers still match exactly."""
        bed = AttackTestbed(location_index=1, shield_present=True, seed=10)
        bed.shield.detector = ActiveDetector(
            bed.codec.identifying_sequence(bed.imd.serial),
            b_thresh=0,
            p_thresh_dbm=-17.4,
            anomaly_rssi_dbm=-30.0,
        )
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.shield_jammed


class TestOutOfSpecIMD:
    def test_slow_imd_escapes_the_jam_window(self):
        """An IMD replying *outside* the calibrated [T1, T2] window
        defeats the reply-window jam -- which is exactly why S6 says
        'each shield should calibrate the above parameters for its own
        IMD'."""
        policy = JamWindowPolicy()
        # In-spec replies are covered...
        assert policy.covers_reply(0.0, 3.5e-3, 10e-3)
        # ...an out-of-spec straggler is not.
        assert not policy.covers_reply(0.0, 6.0e-3, 21e-3)

    def test_miscalibrated_shield_leaks_reply(self):
        """End to end: protect a (pathologically) slow IMD with default
        Virtuoso shield timing and the reply starts after the jam window
        has closed -- the whole packet leaks."""
        slow = IMDParameters(name="slow-imd", reply_delay_s=30.0e-3)
        bed = AttackTestbed(
            location_index=1,
            shield_present=True,
            jam_imd_replies=True,
            imd_parameters=slow,
            seed=11,
        )
        command = Packet(
            bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01"
        )
        bed.shield.send_command_to_imd(command)
        bed.simulator.run(until=0.1)
        reply = bed.air.transmissions_by("imd")[0]
        eve_copy = bed.air.receive(reply, "adversary")
        # The window closed before the reply finished: most of it leaked
        # (jam covers at most the leading edge).
        assert eve_copy.bit_flips < reply.n_bits / 10


class TestBrokenRelay:
    def test_wrong_pairing_code_cannot_command(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=12)
        pairing = OutOfBandPairing(b"shield-z")
        bed.shield.relay = ShieldRelay(pairing.derive_secret("111111"), bed.codec)
        imposter = ProgrammerLink(pairing.derive_secret("999999"), bed.codec)
        wire = imposter.seal_command(
            Packet(bed.imd.serial, CommandType.SET_THERAPY, 1, bytes(6))
        )
        with pytest.raises(AuthenticationError):
            bed.shield.receive_encrypted_command(wire)
        assert bed.air.transmissions_by("shield") == []

    def test_truncated_wire_rejected(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=13)
        secret = OutOfBandPairing(b"shield-z").derive_secret("123123")
        bed.shield.relay = ShieldRelay(secret, bed.codec)
        link = ProgrammerLink(secret, bed.codec)
        wire = link.seal_command(
            Packet(bed.imd.serial, CommandType.INTERROGATE, 1, b"abcd")
        )
        with pytest.raises(AuthenticationError):
            bed.shield.receive_encrypted_command(wire[: len(wire) // 2])


class TestDeadShield:
    def test_unpowered_shield_equals_no_shield(self):
        """The failure mode a patient must know about: a dead battery is
        equivalent to not wearing the shield at all."""
        dead = AttackTestbed(location_index=3, shield_present=True, seed=14)
        dead.shield.power_off()
        bare = AttackTestbed(location_index=3, shield_present=False, seed=14)
        dead_wins = sum(
            dead.attack_once(dead.interrogate_packet()).imd_responded
            for _ in range(10)
        )
        bare_wins = sum(
            bare.attack_once(bare.interrogate_packet()).imd_responded
            for _ in range(10)
        )
        assert dead_wins == bare_wins == 10
