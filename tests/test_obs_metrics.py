"""Tests for the mergeable observability accumulators.

The load-bearing property: :class:`ObsAccumulator.merge` is associative,
commutative, and exact, so worker deltas shipped back in any order
reduce to the totals one serial pass would have recorded -- the same
contract :class:`repro.fleet.metrics.FleetAccumulator` pins for the
simulation numbers, applied to the observability numbers.
"""

import itertools
import math
import os

import pytest

from repro.obs.metrics import (
    ObsAccumulator,
    Timing,
    counter_inc,
    observed_call,
    take_global,
    timed,
    timing_observe,
)


class TestTiming:
    def test_observe_folds_count_total_min_max(self):
        timing = Timing()
        for seconds in (0.5, 0.1, 0.9):
            timing.observe(seconds)
        assert timing.count == 3
        assert timing.total == pytest.approx(1.5)
        assert timing.min == 0.1
        assert timing.max == 0.9

    def test_merge_matches_single_stream(self):
        first, second, reference = Timing(), Timing(), Timing()
        for index, seconds in enumerate((0.2, 0.7, 0.05, 0.4)):
            (first if index % 2 else second).observe(seconds)
            reference.observe(seconds)
        merged = first.merge(second)
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.min == reference.min
        assert merged.max == reference.max

    def test_payload_round_trip(self):
        timing = Timing()
        timing.observe(0.25)
        timing.observe(0.75)
        restored = Timing.from_payload(timing.to_payload())
        assert restored == timing

    def test_empty_timing_round_trips_through_json_null_min(self):
        payload = Timing().to_payload()
        assert payload["min"] is None  # JSON has no Infinity
        restored = Timing.from_payload(payload)
        assert math.isinf(restored.min)
        assert restored.count == 0


def _shards() -> list[ObsAccumulator]:
    """Three shard accumulators with overlapping and disjoint names."""
    a = ObsAccumulator()
    a.count("units", 3)
    a.count("bytes", 120)
    a.observe("put", 0.2)
    a.observe("put", 0.6)
    b = ObsAccumulator()
    b.count("units", 2)
    b.count("hits", 1)
    b.observe("put", 0.05)
    b.observe("get", 0.3)
    c = ObsAccumulator()
    c.count("bytes", 7)
    c.observe("get", 0.9)
    return [a, b, c]


class TestObsAccumulator:
    def test_merge_is_order_invariant(self):
        """Every permutation of shard merges produces identical totals."""
        payloads = [s.to_payload() for s in _shards()]
        merges = []
        for order in itertools.permutations(range(3)):
            acc = ObsAccumulator()
            for index in order:
                acc.merge_payload(payloads[index])
            merges.append(acc.to_payload())
        assert all(m == merges[0] for m in merges)

    def test_merge_matches_single_serial_pass(self):
        serial = ObsAccumulator()
        serial.count("units", 5)
        serial.count("bytes", 127)
        serial.count("hits", 1)
        for seconds in (0.2, 0.6, 0.05):
            serial.observe("put", seconds)
        for seconds in (0.3, 0.9):
            serial.observe("get", seconds)
        merged = ObsAccumulator()
        for shard in _shards():
            merged.merge(shard)
        assert merged.to_payload() == serial.to_payload()

    def test_payload_round_trip_and_sorted_keys(self):
        acc = ObsAccumulator()
        acc.count("zeta")
        acc.count("alpha", 2)
        acc.observe("query", 0.1)
        payload = acc.to_payload()
        assert list(payload["counters"]) == ["alpha", "zeta"]
        assert ObsAccumulator.from_payload(payload).to_payload() == payload

    def test_empty_property(self):
        acc = ObsAccumulator()
        assert acc.empty
        acc.count("anything")
        assert not acc.empty

    def test_merging_empty_is_identity(self):
        acc = _shards()[0]
        before = acc.to_payload()
        acc.merge(ObsAccumulator())
        assert acc.to_payload() == before


class TestGlobalAccumulator:
    def test_take_global_returns_delta_and_resets(self):
        take_global()  # isolate from whatever the session recorded
        counter_inc("test.events", 4)
        timing_observe("test.span", 0.5)
        delta = take_global()
        assert delta["counters"] == {"test.events": 4}
        assert delta["timings"]["test.span"]["count"] == 1
        # The next take sees only what happened after the previous one.
        empty = take_global()
        assert empty == {"counters": {}, "timings": {}}

    def test_timed_context_records_a_timing(self):
        take_global()
        with timed("test.block"):
            pass
        delta = take_global()
        assert delta["timings"]["test.block"]["count"] == 1
        assert delta["timings"]["test.block"]["total"] >= 0.0


class TestObservedCall:
    def test_envelope_carries_result_and_observation(self):
        take_global()

        def unit_fn(unit):
            counter_inc("test.inside", unit)
            return {"value": unit * 2}

        envelope = observed_call(unit_fn, 21)
        assert envelope["result"] == {"value": 42}
        obs = envelope["obs"]
        assert obs["pid"] == os.getpid()
        assert obs["exec_s"] >= 0.0
        assert obs["start_mono"] > 0.0
        assert obs["metrics"]["counters"]["test.inside"] == 21

    def test_consecutive_calls_ship_disjoint_deltas(self):
        take_global()

        def unit_fn(unit):
            counter_inc("test.unit", 1)
            return unit

        first = observed_call(unit_fn, "a")["obs"]["metrics"]
        second = observed_call(unit_fn, "b")["obs"]["metrics"]
        assert first["counters"] == {"test.unit": 1}
        assert second["counters"] == {"test.unit": 1}
        merged = ObsAccumulator()
        merged.merge_payload(first)
        merged.merge_payload(second)
        assert merged.counters == {"test.unit": 2}
