"""Tests for the relayed clinical-session workflow."""

import pytest

from repro.core.relay import ProgrammerLink, ShieldRelay
from repro.crypto.pairing import OutOfBandPairing
from repro.experiments.testbed import AttackTestbed
from repro.protocol.commands import CommandType, TherapySettings
from repro.protocol.session import SessionState
from repro.protocol.workflow import RelayedSessionWorkflow


@pytest.fixture
def workflow():
    secret = OutOfBandPairing(b"shield-w").derive_secret("424242")
    bed = AttackTestbed(
        location_index=1, shield_present=True, jam_imd_replies=True, seed=77
    )
    bed.shield.relay = ShieldRelay(secret, bed.codec)
    link = ProgrammerLink(secret, bed.codec)
    return bed, RelayedSessionWorkflow(
        bed.simulator, bed.shield, link, target_serial=bed.imd.serial
    )


class TestRelayedSession:
    def test_full_checkup(self, workflow):
        """Open, interrogate twice, modify therapy, close -- all relayed
        and all protected by the reply-window jamming."""
        bed, flow = workflow
        flow.open()
        flow.interrogate()
        flow.interrogate()
        flow.set_therapy(TherapySettings(pacing_rate_bpm=75))
        outcome = flow.close()

        assert outcome.commands_sent == 5
        assert len(outcome.telemetry_records) == 2
        # ACKs: open, set-therapy, close.
        assert sorted(outcome.acks) == sorted(
            [
                int(CommandType.SESSION_OPEN),
                int(CommandType.SET_THERAPY),
                int(CommandType.SESSION_CLOSE),
            ]
        )
        assert bed.imd.therapy.pacing_rate_bpm == 75
        assert flow.session.state is SessionState.CLOSED

    def test_session_records_counts(self, workflow):
        bed, flow = workflow
        flow.open()
        flow.interrogate()
        assert flow.session.commands_sent == 2
        assert flow.session.replies_received == 2

    def test_every_reply_was_jammed_on_air(self, workflow):
        """Each IMD reply must be covered by a reply-window jam."""
        bed, flow = workflow
        flow.open()
        flow.interrogate()
        flow.close()
        replies = bed.air.transmissions_by("imd")
        jams = [
            t
            for t in bed.air.transmissions_by("shield", kind="jam")
            if t.meta.get("reason") == "reply-window"
        ]
        assert len(replies) == 3
        for reply in replies:
            assert any(
                j.start_time <= reply.start_time and j.end_time >= reply.end_time
                for j in jams
            ), "an IMD reply escaped the jam window"

    def test_commands_before_open_rejected(self, workflow):
        _, flow = workflow
        with pytest.raises(RuntimeError):
            flow.interrogate()
        with pytest.raises(RuntimeError):
            flow.close()

    def test_channel_claimed_and_released(self, workflow):
        bed, flow = workflow
        outcome = flow.open()
        assert not flow.plan.is_idle(
            outcome.channel_index, bed.simulator.now
        )
        flow.close()
        assert flow.plan.is_idle(outcome.channel_index, bed.simulator.now + 1.0)

    def test_requires_relay_capable_shield(self):
        bed = AttackTestbed(location_index=1, shield_present=True, seed=1)
        secret = OutOfBandPairing(b"x").derive_secret("111111")
        link = ProgrammerLink(secret, bed.codec)
        with pytest.raises(ValueError):
            RelayedSessionWorkflow(
                bed.simulator, bed.shield, link, target_serial=bed.imd.serial
            )

    def test_lbt_pause_observed(self, workflow):
        bed, flow = workflow
        start = bed.simulator.now
        flow.open()
        first_tx = bed.air.transmissions_by("shield", kind="packet")[0]
        assert first_tx.start_time - start >= 0.010
