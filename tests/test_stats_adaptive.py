"""Tests for adaptive-precision execution: stopping, determinism, cache resume."""

import pytest

from repro.campaigns import registry
from repro.campaigns.spec import Scenario
from repro.stats import (
    AdaptivePolicy,
    AdaptiveScheduler,
    tracked_metrics,
)


def _shielded(locations=(1, 8, 13)) -> Scenario:
    return registry.get("attack-success-shielded").override(
        location_indices=tuple(locations)
    )


def _passive(locations=(1, 10, 18)) -> Scenario:
    return registry.get("passive-ber-by-location").override(
        location_indices=tuple(locations)
    )


class TestPolicy:
    def test_defaults_are_valid(self):
        policy = AdaptivePolicy()
        assert policy.target_for("success_probability") == 0.10
        assert policy.target_for("ber") == 0.02

    def test_precision_overrides_every_metric(self):
        policy = AdaptivePolicy(precision=0.07)
        assert policy.target_for("success_probability") == 0.07
        assert policy.target_for("ber") == 0.07

    def test_unknown_metric_without_override_raises(self):
        with pytest.raises(ValueError, match="no default precision"):
            AdaptivePolicy().target_for("latency")

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(precision=0.0)
        with pytest.raises(ValueError):
            AdaptivePolicy(round_size=1)
        with pytest.raises(ValueError):
            AdaptivePolicy(max_trials=3, min_trials=6)
        with pytest.raises(ValueError):
            AdaptivePolicy(method="wald")


class TestAdaptiveStopping:
    def test_extreme_cells_stop_early(self):
        """All-zero success cells must converge well under the fixed
        budget -- the whole point of adaptive precision."""
        scenario = _shielded()
        run = AdaptiveScheduler(
            scenario, tracked={"success_probability"}, persist=False
        ).run()
        assert run.converged
        assert run.trials_used <= run.fixed_trials // 2
        for cell in run.cells:
            assert cell.estimators["success_probability"].estimate == 0.0

    def test_tighter_precision_costs_more_trials(self):
        scenario = _shielded((1,))
        cheap = AdaptiveScheduler(
            scenario, AdaptivePolicy(precision=0.15), persist=False
        ).run()
        dear = AdaptiveScheduler(
            scenario, AdaptivePolicy(precision=0.05), persist=False
        ).run()
        assert cheap.trials_used < dear.trials_used

    def test_max_trials_caps_unconverged_cells(self):
        scenario = _shielded((1,))
        run = AdaptiveScheduler(
            scenario,
            AdaptivePolicy(precision=0.001, round_size=6, max_trials=12),
            persist=False,
        ).run()
        assert not run.converged
        assert run.cells[0].trials == 12

    def test_tracked_metrics_gate_stopping(self):
        """Tracking only the headline metric must not wait for alarm
        precision (and vice versa untracked metrics still accumulate)."""
        scenario = _shielded((1,))
        run = AdaptiveScheduler(
            scenario, tracked={0: {"success_probability"}}, persist=False
        ).run()
        alarm = run.cells[0].estimators["alarm_probability"]
        assert alarm.trials == run.cells[0].trials  # free data accumulated
        with pytest.raises(ValueError, match="not measured"):
            AdaptiveScheduler(scenario, tracked={0: {"ber"}}, persist=False)

    def test_ber_cells_use_mean_estimator(self):
        run = AdaptiveScheduler(_passive((1,)), persist=False).run()
        cell = run.cells[0]
        assert cell.converged
        assert 0.3 < cell.estimators["ber"].estimate < 0.6


class TestAdaptiveDeterminism:
    def test_rerun_is_bit_identical(self):
        scenario = _passive()
        first = AdaptiveScheduler(scenario, persist=False).run()
        second = AdaptiveScheduler(scenario, persist=False).run()
        assert [c.trials for c in first.cells] == [c.trials for c in second.cells]
        assert [c.estimators["ber"].total for c in first.cells] == [
            c.estimators["ber"].total for c in second.cells
        ]

    def test_round_streams_never_alias_fixed_plan_streams(self):
        """An adaptive round at (cell, round 0) must not replay the
        fixed plan's trials for the same location."""
        from repro.campaigns.runner import plan_scenario_units

        scenario = _shielded((1,))
        fixed = plan_scenario_units(scenario)[0]
        round0 = plan_scenario_units(
            scenario, positions=[0], n_trials=scenario.n_trials, round_index=0
        )[0]
        assert fixed.key != round0.key
        assert fixed.spec.seed != round0.spec.seed

    def test_parallel_matches_serial(self):
        scenario = _shielded((1, 8))
        serial = AdaptiveScheduler(scenario, persist=False).run()
        parallel = AdaptiveScheduler(scenario, workers=2, persist=False).run()
        assert [c.trials for c in serial.cells] == [c.trials for c in parallel.cells]
        assert [
            c.estimators["success_probability"].successes for c in serial.cells
        ] == [
            c.estimators["success_probability"].successes for c in parallel.cells
        ]


class TestAdaptiveCache:
    def test_second_run_is_pure_cache(self, tmp_path):
        scenario = _passive()
        first = AdaptiveScheduler(scenario, cache_dir=tmp_path).run()
        assert first.computed_units > 0 and first.cached_units == 0
        second = AdaptiveScheduler(scenario, cache_dir=tmp_path).run()
        assert second.computed_units == 0
        assert second.cached_units == first.computed_units
        assert [c.trials for c in first.cells] == [c.trials for c in second.cells]
        assert [c.estimators["ber"].total for c in first.cells] == [
            c.estimators["ber"].total for c in second.cells
        ]

    def test_adaptive_and_fixed_share_namespace_without_collisions(self, tmp_path):
        from repro.campaigns import CampaignRunner

        scenario = _shielded()
        fixed = CampaignRunner(scenario, cache_dir=tmp_path).run()
        run = AdaptiveScheduler(scenario, cache_dir=tmp_path).run()
        # The adaptive run found none of the fixed units reusable (they
        # are different coordinates) and vice versa the fixed result is
        # still fully cached afterwards.
        assert run.cached_units == 0
        again = CampaignRunner(scenario, cache_dir=tmp_path).run()
        assert again.computed_units == 0
        assert again.points == fixed.points


class TestTrackedMetricsHelper:
    def test_expectation_metrics_tracked_per_cell(self):
        scenario = registry.get("highpower-shielded")
        expectations = registry.expectations_for("highpower-shielded")
        tracked = tracked_metrics(scenario, expectations)
        positions = {loc: i for i, loc in enumerate(scenario.location_indices)}
        # Alarm expectation covers locations 1-6 only.
        assert "alarm_probability" in tracked[positions[1]]
        assert "alarm_probability" not in tracked[positions[18]]
        # Headline metric is always tracked.
        assert all("success_probability" in t for t in tracked.values())
