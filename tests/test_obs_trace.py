"""Tests for span tracing and its hard invariant.

The invariant this file exists to pin: **tracing never changes the
numbers**.  A traced run's results and cache bytes are bit-identical to
an untraced run's, on the classic attack path and the fleet path alike
-- the trace is write-only observability, never an input.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.campaigns import registry
from repro.campaigns.cli import main
from repro.campaigns.runner import CampaignRunner
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_FILENAME,
    TRACE_SCHEMA_VERSION,
    Tracer,
    resolve_tracing,
    runs_root,
)


class TestResolveTracing:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert resolve_tracing() is False

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_environment_opt_in(self, monkeypatch, raw, expected):
        monkeypatch.setenv(TRACE_ENV, raw)
        assert resolve_tracing() is expected

    def test_flag_beats_environment(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert resolve_tracing(False) is False
        monkeypatch.setenv(TRACE_ENV, "0")
        assert resolve_tracing(True) is True

    def test_junk_environment_raises(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "maybe")
        with pytest.raises(ValueError, match=TRACE_ENV):
            resolve_tracing()


def _read_events(path: Path) -> list[dict]:
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestTracerLifecycle:
    def test_manifest_is_the_first_line_and_flushed(self, tmp_path):
        tracer = Tracer(tmp_path, "demo")
        tracer.start_run({"scenario": "demo", "seed": 7})
        # Durable before finish: an in-flight run is identifiable.
        events = _read_events(tracer.path)
        assert events[0]["type"] == "manifest"
        assert events[0]["t"] == 0.0
        assert events[0]["seed"] == 7
        assert events[0]["trace_schema"] == TRACE_SCHEMA_VERSION
        assert events[0]["run_id"] == tracer.run_id
        tracer.finish()

    def test_events_carry_type_and_monotonic_offset(self, tmp_path):
        tracer = Tracer(tmp_path, "demo")
        tracer.start_run({})
        tracer.emit("unit", key="abc", status="computed")
        tracer.finish(total_units=1)
        events = _read_events(tracer.path)
        assert [e["type"] for e in events] == ["manifest", "unit", "summary"]
        assert events[1]["key"] == "abc"
        offsets = [e["t"] for e in events]
        assert offsets == sorted(offsets)
        assert events[-1]["wall_s"] >= 0.0
        assert events[-1]["total_units"] == 1

    def test_finish_is_idempotent_and_emit_after_is_noop(self, tmp_path):
        tracer = Tracer(tmp_path, "demo")
        tracer.start_run({})
        tracer.finish()
        assert tracer.finished
        tracer.finish()  # no error, no second summary
        tracer.emit("unit", key="late")
        events = _read_events(tracer.path)
        assert sum(1 for e in events if e["type"] == "summary") == 1
        assert not any(e.get("key") == "late" for e in events)

    def test_emit_before_start_is_noop(self, tmp_path):
        tracer = Tracer(tmp_path, "demo")
        tracer.emit("unit", key="early")
        assert not tracer.path.exists()

    def test_run_ids_never_collide(self, tmp_path):
        first = Tracer(tmp_path, "demo", run_id="fixed")
        first.start_run({})
        first.finish()
        second = Tracer(tmp_path, "demo", run_id="fixed")
        assert second.run_id != first.run_id
        assert second.run_dir != first.run_dir

    def test_context_manager_marks_interruption(self, tmp_path):
        with pytest.raises(RuntimeError):
            with Tracer(tmp_path, "demo") as tracer:
                tracer.start_run({})
                raise RuntimeError("boom")
        events = _read_events(tracer.path)
        assert events[-1]["type"] == "summary"
        assert events[-1]["interrupted"] is True


def _attack_scenario():
    return registry.get("attack-success-shielded").override(
        n_trials=2, location_indices=(1, 8)
    )


def _fleet_scenario():
    return registry.get("fleet-privacy-leakage").override(
        n_patients=20, n_trials=2, chunk_size=10
    )


def _run(scenario, cache_dir, tracer=None, workers=None):
    runner = CampaignRunner(
        scenario, cache_dir=cache_dir, workers=workers, tracer=tracer
    )
    return runner.run()


def _cache_digest(root: Path) -> dict[str, str]:
    """Relative path -> content hash of every cache file except runs/."""
    digest = {}
    for path in sorted(root.rglob("*")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] == "runs":
            continue
        if path.is_file():
            digest[str(relative)] = hashlib.sha256(
                path.read_bytes()
            ).hexdigest()
    return digest


class TestTracedCampaign:
    def test_manifest_records_the_run_configuration(self, tmp_path):
        scenario = _attack_scenario()
        tracer = Tracer(tmp_path, scenario.name)
        _run(scenario, tmp_path, tracer=tracer)
        events = _read_events(tracer.path)
        manifest = events[0]
        assert manifest["scenario"] == scenario.name
        assert manifest["scenario_hash"] == scenario.scenario_hash()
        assert manifest["kind"] == "attack"
        assert manifest["seed"] == scenario.seed
        assert manifest["total_units"] == 2
        assert manifest["workers"] == 1
        assert manifest["forced_serial"] is False
        assert manifest["transport"] in ("auto", "pickle", "shm")
        assert manifest["accel_backend"] in ("numpy", "numba", "unresolved")
        assert manifest["cache_backend"] == "filesystem"
        for key in ("schema_version", "package_version", "python_version",
                    "numpy_version", "started_at"):
            assert key in manifest

    def test_one_span_per_unit_with_stage_timings(self, tmp_path):
        scenario = _attack_scenario()
        tracer = Tracer(tmp_path, scenario.name)
        _run(scenario, tmp_path, tracer=tracer)
        events = _read_events(tracer.path)
        units = [e for e in events if e["type"] == "unit"]
        assert len(units) == 2
        for unit in units:
            assert unit["status"] == "computed"
            assert unit["queue_s"] >= 0.0
            assert unit["exec_s"] > 0.0
            assert unit["flush_s"] >= 0.0
            assert unit["result_bytes"] > 0
            assert isinstance(unit["pid"], int)
            assert unit["coords"]["kind"] == "attack"
        phases = {e["name"] for e in events if e["type"] == "phase"}
        assert {"plan", "execute", "reduce"} <= phases
        metrics = [e for e in events if e["type"] == "metrics"]
        assert len(metrics) == 1
        assert events[-1]["type"] == "summary"
        assert events[-1]["computed_units"] == 2

    def test_second_run_traces_cache_hits(self, tmp_path):
        scenario = _attack_scenario()
        _run(scenario, tmp_path)
        tracer = Tracer(tmp_path, scenario.name)
        result = _run(scenario, tmp_path, tracer=tracer)
        assert result.computed_units == 0
        events = _read_events(tracer.path)
        units = [e for e in events if e["type"] == "unit"]
        assert len(units) == 2
        assert all(u["status"] == "hit" for u in units)
        assert all(u["load_s"] >= 0.0 for u in units)
        assert events[-1]["cached_units"] == 2

    @pytest.mark.parametrize(
        "make_scenario", [_attack_scenario, _fleet_scenario],
        ids=["attack", "fleet"],
    )
    def test_traced_run_is_bit_identical_to_untraced(
        self, tmp_path, make_scenario
    ):
        """The hard invariant: tracing never enters results or cache."""
        scenario = make_scenario()
        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        plain = _run(scenario, plain_dir)
        traced = _run(
            scenario, traced_dir, tracer=Tracer(traced_dir, scenario.name)
        )
        dump = lambda r: json.dumps(r.to_payload(), sort_keys=True)
        assert dump(traced) == dump(plain)
        assert _cache_digest(traced_dir) == _cache_digest(plain_dir)
        # The only difference on disk is the trace itself (default-on
        # progress may leave runs/.progress snapshots on both sides).
        assert list(runs_root(traced_dir).glob("*/trace.jsonl"))
        assert not list(runs_root(plain_dir).glob("*/trace.jsonl"))

    def test_parallel_traced_run_matches_serial(self, tmp_path):
        scenario = _attack_scenario()
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial_tracer = Tracer(serial_dir, scenario.name)
        pool_tracer = Tracer(pool_dir, scenario.name)
        serial = _run(scenario, serial_dir, tracer=serial_tracer, workers=1)
        pooled = _run(scenario, pool_dir, tracer=pool_tracer, workers=2)
        assert json.dumps(pooled.to_payload(), sort_keys=True) == json.dumps(
            serial.to_payload(), sort_keys=True
        )
        assert _cache_digest(pool_dir) == _cache_digest(serial_dir)
        # Same observability shape either way: one span per unit, with
        # the same stage fields.
        for path in (serial_tracer.path, pool_tracer.path):
            units = [
                e for e in _read_events(path) if e["type"] == "unit"
            ]
            assert len(units) == 2
            assert all(
                {"queue_s", "exec_s", "flush_s", "pid"} <= set(u)
                for u in units
            )

    def test_materialize_finishes_the_trace(self, tmp_path):
        scenario = _attack_scenario()
        tracer = Tracer(tmp_path, scenario.name)
        runner = CampaignRunner(scenario, cache_dir=tmp_path, tracer=tracer)
        computed = runner.materialize(limit=1)
        assert computed == 1
        assert tracer.finished
        events = _read_events(tracer.path)
        assert events[-1]["computed_units"] == 1


class TestCliTracing:
    _ARGS = (
        "run", "attack-success-shielded",
        "--trials", "2", "--locations", "1",
        "--format", "json",
    )

    def _trace_files(self, cache_dir: Path) -> list[Path]:
        root = runs_root(cache_dir)
        return sorted(root.glob(f"*/{TRACE_FILENAME}")) if root.is_dir() else []

    def test_untraced_by_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert main([*self._ARGS, "--cache-dir", str(tmp_path)]) == 0
        assert self._trace_files(tmp_path) == []

    def test_trace_flag_writes_a_trace(self, capsys, tmp_path):
        assert main(
            [*self._ARGS, "--cache-dir", str(tmp_path), "--trace"]
        ) == 0
        traces = self._trace_files(tmp_path)
        assert len(traces) == 1
        manifest = json.loads(traces[0].read_text().splitlines()[0])
        assert manifest["scenario"] == "attack-success-shielded"

    def test_environment_enables_tracing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert main([*self._ARGS, "--cache-dir", str(tmp_path)]) == 0
        assert len(self._trace_files(tmp_path)) == 1

    def test_no_trace_flag_beats_environment(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert main(
            [*self._ARGS, "--cache-dir", str(tmp_path), "--no-trace"]
        ) == 0
        assert self._trace_files(tmp_path) == []

    def test_junk_environment_exits_with_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "maybe")
        with pytest.raises(SystemExit, match=TRACE_ENV):
            main([*self._ARGS, "--cache-dir", str(tmp_path)])

    def test_text_footer_names_the_trace(self, capsys, tmp_path):
        assert main([
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace: " in out
        assert TRACE_FILENAME in out

    def test_profile_override_is_logged_and_recorded(self, capsys, tmp_path):
        assert main([
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path),
            "--trace", "--profile", "--workers", "2",
        ]) == 0
        err = capsys.readouterr().err
        assert "--profile forces serial" in err
        assert "workers=2" in err
        manifest = json.loads(
            self._trace_files(tmp_path)[0].read_text().splitlines()[0]
        )
        assert manifest["forced_serial"] is True
        assert manifest["workers"] == 2
        assert manifest["effective_workers"] == 1

    def test_validate_notes_tracing_is_unsupported(self, capsys, tmp_path):
        assert main([
            "validate", "crypto-only-baseline",
            "--budget", "smoke",
            "--cache-dir", str(tmp_path), "--trace",
        ]) in (0, 1)
        assert "validate runs untraced" in capsys.readouterr().err
