"""Event-level tests for the assembled shield (S6 + S7 behaviours)."""

import numpy as np
import pytest

from repro.experiments.testbed import AttackTestbed
from repro.protocol.commands import CommandType


def _bed(**kwargs) -> AttackTestbed:
    defaults = dict(location_index=1, shield_present=True, attacker="fcc", seed=5)
    defaults.update(kwargs)
    return AttackTestbed(**defaults)


class TestActiveProtection:
    def test_matched_command_is_jammed(self):
        bed = _bed()
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.shield_jammed
        assert not outcome.imd_accepted

    def test_detection_recorded(self):
        bed = _bed()
        bed.attack_once(bed.interrogate_packet())
        assert len(bed.shield.detections) >= 1
        assert bed.shield.detections[0].matched

    def test_jam_starts_after_detection_window(self):
        """The jam must begin after m bits + turn-around, not instantly."""
        bed = _bed()
        bed.attack_once(bed.interrogate_packet())
        jams = bed.air.transmissions_by("shield", kind="jam")
        attack = bed.air.transmissions_by("adversary")[0]
        m_bits_duration = bed.shield.detector.window_bits / attack.bit_rate
        assert jams[0].start_time >= attack.start_time + m_bits_duration

    def test_jam_stops_after_turnaround(self):
        """Table 2: the shield frees the medium ~270 us after the
        adversary stops."""
        bed = _bed()
        bed.attack_once(bed.interrogate_packet())
        jam = bed.air.transmissions_by("shield", kind="jam")[0]
        attack = bed.air.transmissions_by("adversary")[0]
        lag = jam.end_time - attack.end_time
        assert 100e-6 < lag < 500e-6

    def test_turnaround_samples_collected(self):
        bed = _bed()
        for _ in range(10):
            bed.attack_once(bed.interrogate_packet())
        samples = bed.shield.turnaround_samples_s
        assert len(samples) == 10
        assert abs(float(np.mean(samples)) - 270e-6) < 60e-6

    def test_foreign_serial_not_jammed(self):
        """Traffic addressed to another IMD must pass untouched --
        coexistence depends on it."""
        bed = _bed()
        from repro.protocol.packets import Packet

        other = bytes(reversed(range(10)))
        stray = Packet(other, CommandType.INTERROGATE, 1, b"xxxx")
        outcome = bed.attack_once(stray)
        assert not outcome.shield_jammed

    def test_jamming_disabled_logs_only(self):
        bed = _bed(shield_jamming_enabled=False)
        outcome = bed.attack_once(bed.interrogate_packet())
        assert not outcome.shield_jammed
        assert outcome.imd_accepted  # nothing stopped it
        assert len(bed.shield.jam_records) == 1

    def test_therapy_command_blocked(self):
        bed = _bed()
        outcome = bed.attack_once(bed.therapy_packet())
        assert not outcome.therapy_changed


class TestAlarms:
    def test_fcc_adversary_never_alarms(self):
        """Fig. 11: quiet failures; the FCC-power attack never exceeds
        P_thresh at any distance the jamming cannot cover."""
        bed = _bed(location_index=5)
        for _ in range(10):
            outcome = bed.attack_once(bed.interrogate_packet())
            assert not outcome.alarm_raised

    def test_highpower_nearby_alarms(self):
        """Fig. 13: the shield flags high-powered nearby transmissions."""
        bed = _bed(attacker="highpower")
        outcome = bed.attack_once(bed.interrogate_packet())
        assert outcome.alarm_raised

    def test_alarm_reasons_recorded(self):
        bed = _bed(attacker="highpower")
        bed.attack_once(bed.interrogate_packet())
        reasons = {e.reason for e in bed.shield.alarms.events}
        assert reasons <= {"above-p-thresh", "power-anomaly"}
        assert reasons


class TestRelayPath:
    def test_shield_relays_command_and_decodes_reply(self, serial):
        """S4 end to end at the event level: the shield commands the IMD
        and decodes the reply while jamming the reply window."""
        bed = _bed(jam_imd_replies=True)
        from repro.protocol.packets import Packet

        command = Packet(bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
        bed.shield.send_command_to_imd(command)
        bed.simulator.run(until=0.08)
        assert bed.imd.transmissions == 1
        assert len(bed.shield.decoded_replies) == 1
        assert bed.shield.decoded_replies[0].opcode is CommandType.TELEMETRY

    def test_reply_window_jam_covers_reply(self):
        """The S6 window [T1, T2-T1+P] must bracket the actual reply."""
        bed = _bed(jam_imd_replies=True)
        from repro.protocol.packets import Packet

        command = Packet(bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
        bed.shield.send_command_to_imd(command)
        bed.simulator.run(until=0.08)
        jams = [
            t
            for t in bed.air.transmissions_by("shield", kind="jam")
            if t.meta.get("reason") == "reply-window"
        ]
        reply = bed.air.transmissions_by("imd")[0]
        assert jams, "no reply-window jam was scheduled"
        jam = jams[0]
        assert jam.start_time <= reply.start_time
        assert jam.end_time >= reply.end_time

    def test_eavesdropper_cannot_read_jammed_reply(self):
        """While the shield jams the reply window, an adversary's copy of
        the reply is effectively noise (event-level check)."""
        bed = _bed(jam_imd_replies=True)
        from repro.protocol.packets import Packet

        command = Packet(bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
        bed.shield.send_command_to_imd(command)
        bed.simulator.run(until=0.08)
        reply = bed.air.transmissions_by("imd")[0]
        reception = bed.air.receive(reply, "adversary")
        assert reception.bit_flips / reply.n_bits > 0.3

    def test_shield_reply_loss_rate_low(self):
        """Fig. 10: the shield's own decode loss under jamming is tiny."""
        bed = _bed(jam_imd_replies=True)
        from repro.protocol.packets import Packet

        for i in range(30):
            command = Packet(
                bed.imd.serial, CommandType.INTERROGATE, i % 256, b"\x00\x00\x00\x01"
            )
            bed.shield.send_command_to_imd(command)
            bed.simulator.run(until=bed.simulator.now + 0.08)
        assert bed.shield.reply_loss_rate() <= 0.1


class TestMessageAlterationDefence:
    def test_concurrent_signal_aborts_relay_and_jams(self):
        """S7 rule 2: a signal overlapping the shield's own message makes
        the shield switch from transmission to jamming, so the adversary
        cannot ride on the shield's packets."""
        bed = _bed(jam_imd_replies=True)
        from repro.protocol.packets import Packet

        command = Packet(bed.imd.serial, CommandType.INTERROGATE, 1, b"\x00\x00\x00\x01")
        bed.shield.send_command_to_imd(command)
        # Adversary fires 0.5 ms into the shield's ~1.8 ms transmission.
        bed.simulator.schedule(
            0.5e-3, lambda: bed.attacker.send_packet(bed.interrogate_packet())
        )
        bed.simulator.run(until=0.08)
        assert bed.shield.aborted_relays == 1
        assert bed.air.transmissions_by("shield", kind="jam")
        # Neither the truncated relay nor the adversary command worked.
        assert bed.imd.accepted_packets == 0
