"""Tests for PSD estimation and frequency profiles (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.phy.fsk import FSKModulator
from repro.phy.signal import Waveform
from repro.phy.spectrum import (
    FrequencyProfile,
    band_power_fraction,
    estimate_frequency_profile,
    power_spectral_density,
)


def _tone(freq_hz: float, n: int = 4096, fs: float = 600e3) -> Waveform:
    t = np.arange(n) / fs
    return Waveform(np.exp(2j * np.pi * freq_hz * t), fs)


class TestPSD:
    def test_tone_peak_location(self):
        freqs, psd = power_spectral_density(_tone(50e3))
        assert freqs[np.argmax(psd)] == pytest.approx(50e3, abs=3e3)

    def test_negative_tone_peak(self):
        freqs, psd = power_spectral_density(_tone(-100e3))
        assert freqs[np.argmax(psd)] == pytest.approx(-100e3, abs=3e3)

    def test_frequencies_sorted(self):
        freqs, _ = power_spectral_density(_tone(10e3))
        assert np.all(np.diff(freqs) > 0)

    def test_short_waveform_handled(self):
        freqs, psd = power_spectral_density(Waveform(np.ones(16), 1e6), n_fft=256)
        assert len(freqs) == len(psd)


class TestFrequencyProfile:
    def test_normalisation(self):
        p = FrequencyProfile(np.array([-1.0, 0.0, 1.0]), np.array([1.0, 2.0, 1.0]))
        assert p.relative_power.sum() == pytest.approx(1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            FrequencyProfile(np.array([0.0, 1.0]), np.array([1.0, -0.5]))

    def test_rejects_zero_power(self):
        with pytest.raises(ValueError):
            FrequencyProfile(np.array([0.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            FrequencyProfile(np.array([0.0, 1.0]), np.array([1.0]))

    def test_peak_frequencies_of_fsk_profile(self):
        p = FrequencyProfile.two_tone_fsk(50e3, 100e3, 128, 600e3)
        peaks = p.peak_frequencies(2)
        assert peaks[0] == pytest.approx(-50e3, abs=6e3)
        assert peaks[1] == pytest.approx(50e3, abs=6e3)

    def test_power_in_band(self):
        p = FrequencyProfile.two_tone_fsk(50e3, 100e3, 256, 600e3)
        # Main lobes span +/- one bit rate around each tone.
        tones = p.power_in_band(-150e3, -20e3) + p.power_in_band(20e3, 150e3)
        assert tones > 0.75

    def test_power_in_band_rejects_inverted(self):
        p = FrequencyProfile.flat(8, 300e3)
        with pytest.raises(ValueError):
            p.power_in_band(10.0, -10.0)

    def test_flat_profile_uniform(self):
        p = FrequencyProfile.flat(10, 300e3)
        assert np.allclose(p.relative_power, 0.1)

    def test_peak_count_validation(self):
        p = FrequencyProfile.flat(4, 300e3)
        with pytest.raises(ValueError):
            p.peak_frequencies(0)


class TestEstimation:
    def test_fig4_fsk_energy_concentrates_at_tones(self, rng):
        """Fig. 4: 'most of the energy is concentrated around +/-50 KHz'."""
        bits = rng.integers(0, 2, size=4000)
        w = FSKModulator().modulate(bits)
        profile = estimate_frequency_profile(w, n_bins=128)
        peaks = profile.peak_frequencies(2)
        assert peaks[0] == pytest.approx(-50e3, abs=8e3)
        assert peaks[1] == pytest.approx(50e3, abs=8e3)

    def test_band_power_fraction_bounds(self, rng):
        bits = rng.integers(0, 2, size=1000)
        w = FSKModulator().modulate(bits)
        frac = band_power_fraction(w, -150e3, 150e3)
        assert 0.9 < frac <= 1.0
