"""Tests for the event-level air: powers, segments, bit corruption."""

import numpy as np
import pytest

from repro.sim.air import Air, LinkModel
from repro.sim.engine import Simulator


class FlatLinks(LinkModel):
    """Constant pathloss everywhere; configurable noise; no fading."""

    def __init__(self, loss_db=50.0, noise_dbm=-110.0):
        self.loss_db = loss_db
        self.noise_dbm = noise_dbm

    def mean_rx_power_dbm(self, source, destination, tx_power_dbm):
        return tx_power_dbm - self.loss_db

    def fading_db(self, source, destination, rng):
        return 0.0

    def noise_power_dbm(self, destination):
        return self.noise_dbm


class Listener:
    """Minimal radio-device duck type that records notifications."""

    full_duplex_rejection_db = None

    def __init__(self, name, channels={0}):
        self.name = name
        self.monitored_channels = set(channels)
        self.started = []
        self.ended = []

    def attach(self, air):
        self.air = air

    def on_transmission_start(self, tx):
        self.started.append(tx)

    def on_transmission_end(self, tx):
        self.ended.append(tx)


@pytest.fixture
def rig():
    sim = Simulator()
    air = Air(sim, FlatLinks(), rng=np.random.default_rng(0))
    a = Listener("a")
    b = Listener("b")
    air.register(a)
    air.register(b)
    return sim, air, a, b


class TestNotifications:
    def test_start_and_end_delivered(self, rig):
        sim, air, a, b = rig
        bits = np.ones(100, dtype=int)
        air.transmit("a", 0, -16.0, 100e3, bits=bits)
        sim.run()
        assert len(b.started) == 1 and len(b.ended) == 1
        assert not a.started  # no self-notification

    def test_channel_filtering(self, rig):
        sim, air, a, b = rig
        b.monitored_channels = {5}
        air.transmit("a", 0, -16.0, 100e3, bits=np.ones(10, dtype=int))
        sim.run()
        assert not b.started

    def test_open_ended_stop(self, rig):
        sim, air, a, b = rig
        jam = air.transmit("a", 0, -16.0, 100e3, kind="jam", duration=None)
        sim.schedule(0.01, lambda: air.stop(jam))
        sim.run()
        assert jam.end_time == pytest.approx(0.01)
        assert len(b.ended) == 1

    def test_duplicate_name_rejected(self, rig):
        sim, air, a, b = rig
        with pytest.raises(ValueError):
            air.register(Listener("a"))

    def test_unknown_source_rejected(self, rig):
        sim, air, a, b = rig
        with pytest.raises(ValueError):
            air.transmit("ghost", 0, -16.0, 100e3, bits=np.ones(8, dtype=int))


class TestSensing:
    def test_channel_busy(self, rig):
        sim, air, a, b = rig
        assert not air.channel_busy(0)
        air.transmit("a", 0, -16.0, 100e3, bits=np.ones(1000, dtype=int))
        assert air.channel_busy(0)
        assert not air.channel_busy(1)

    def test_rssi_reflects_loss(self, rig):
        sim, air, a, b = rig
        tx = air.transmit("a", 0, -16.0, 100e3, bits=np.ones(10, dtype=int))
        assert air.rssi_dbm(tx, "b") == pytest.approx(-66.0)

    def test_rssi_cached_per_receiver(self, rig):
        sim, air, a, b = rig
        tx = air.transmit("a", 0, -16.0, 100e3, bits=np.ones(10, dtype=int))
        assert air.rssi_dbm(tx, "b") == air.rssi_dbm(tx, "b")


class TestReception:
    def test_clean_reception_no_flips(self, rig):
        sim, air, a, b = rig
        bits = np.ones(500, dtype=int)
        tx = air.transmit("a", 0, -16.0, 100e3, bits=bits)
        sim.run()
        rec = air.receive(tx, "b")
        assert rec.bit_flips == 0
        assert np.array_equal(rec.bits, bits)
        # SNR = -66 - (-110) = 44 dB.
        assert rec.mean_sinr_db == pytest.approx(44.0)

    def test_strong_interference_flips_bits(self):
        sim = Simulator()
        air = Air(sim, FlatLinks(loss_db=30.0), rng=np.random.default_rng(1))
        for name in ("victim", "jammer", "rx"):
            air.register(Listener(name))
        bits = np.zeros(2000, dtype=int)
        tx = air.transmit("victim", 0, -16.0, 100e3, bits=bits)
        air.transmit("jammer", 0, 4.0, 100e3, kind="jam", duration=0.02)
        sim.run()
        rec = air.receive(tx, "rx")
        # SIR = -20 dB -> BER ~ 0.5.
        assert 0.35 < rec.bit_flips / len(bits) < 0.65

    def test_partial_jam_corrupts_only_tail(self):
        """Reactive jamming: the jam starts mid-packet; bits before the
        jam survive, bits after it flip."""
        sim = Simulator()
        air = Air(sim, FlatLinks(loss_db=30.0), rng=np.random.default_rng(2))
        for name in ("victim", "jammer", "rx"):
            air.register(Listener(name))
        bits = np.zeros(1000, dtype=int)  # 10 ms at 100 kb/s
        tx = air.transmit("victim", 0, -16.0, 100e3, bits=bits)
        sim.schedule(
            0.005,
            lambda: air.transmit("jammer", 0, 4.0, 100e3, kind="jam", duration=0.01),
        )
        sim.run()
        rec = air.receive(tx, "rx")
        first_half = rec.bits[:490]
        second_half = rec.bits[510:]
        assert np.array_equal(first_half, np.zeros(490, dtype=int))
        assert np.mean(second_half) > 0.3  # heavily flipped

    def test_partial_window_truncates_bits(self, rig):
        sim, air, a, b = rig
        bits = np.ones(1000, dtype=int)
        tx = air.transmit("a", 0, -16.0, 100e3, bits=bits)
        sim.run(until=0.004)
        rec = air.receive(tx, "b", until=0.004)
        assert len(rec.bits) == 400

    def test_full_duplex_rejection_applied(self):
        """A full-duplex receiver hears through its own jam; a
        half-duplex one is deaf while transmitting."""

        def run(rejection_db):
            sim = Simulator()
            air = Air(sim, FlatLinks(loss_db=30.0), rng=np.random.default_rng(3))
            victim = Listener("victim")
            rx = Listener("rx")
            rx.full_duplex_rejection_db = rejection_db
            air.register(victim)
            air.register(rx)
            bits = np.zeros(1000, dtype=int)
            tx = air.transmit("victim", 0, -16.0, 100e3, bits=bits)
            air.transmit("rx", 0, -16.0, 100e3, kind="jam", duration=0.02)
            sim.run()
            return air.receive(tx, "rx")

        full_duplex = run(rejection_db=80.0)
        half_duplex = run(rejection_db=None)
        assert full_duplex.bit_flips == 0
        assert half_duplex.bit_flips > 100
        assert full_duplex.mean_sinr_db > half_duplex.mean_sinr_db + 50

    def test_empty_window_rejected(self, rig):
        sim, air, a, b = rig
        tx = air.transmit("a", 0, -16.0, 100e3, bits=np.ones(10, dtype=int))
        with pytest.raises(ValueError):
            air.receive(tx, "b", until=0.0)

    def test_transmissions_by(self, rig):
        sim, air, a, b = rig
        air.transmit("a", 0, -16.0, 100e3, bits=np.ones(8, dtype=int))
        air.transmit("a", 0, -16.0, 100e3, kind="jam", duration=0.001)
        sim.run()
        assert len(air.transmissions_by("a")) == 2
        assert len(air.transmissions_by("a", kind="jam")) == 1
