"""Tests for CRC-16 and the packet codec."""

import numpy as np
import pytest

from repro.phy.preamble import DEFAULT_PREAMBLE_BITS
from repro.protocol.commands import CommandType
from repro.protocol.crc import (
    bits_to_bytes,
    bytes_to_bits,
    crc16_bits,
    crc16_ccitt,
    crc16_check,
)
from repro.protocol.packets import DecodeError, Packet, PacketCodec, SERIAL_LENGTH


class TestCRC16:
    def test_known_vector(self):
        """CRC-16/CCITT-FALSE of '123456789' is 0x29B1."""
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_is_init(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_check_round_trip(self):
        data = b"heartbeat telemetry"
        assert crc16_check(data, crc16_ccitt(data))

    def test_single_bit_flip_detected(self):
        data = bytearray(b"therapy parameters")
        crc = crc16_ccitt(bytes(data))
        data[3] ^= 0x10
        assert not crc16_check(bytes(data), crc)

    def test_bit_level_matches_byte_level(self):
        data = b"\x01\x02\xff\x80"
        assert crc16_bits(bytes_to_bits(data)) == crc16_ccitt(data)


class TestBitPacking:
    def test_round_trip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        bits = bytes_to_bits(b"\x80")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_empty(self):
        assert len(bytes_to_bits(b"")) == 0
        assert bits_to_bytes(np.zeros(0, dtype=int)) == b""

    def test_rejects_partial_byte(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=int))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.full(8, 2))


class TestPacket:
    def test_serial_length_enforced(self):
        with pytest.raises(ValueError):
            Packet(b"short", CommandType.INTERROGATE, 1)

    def test_sequence_range(self, serial):
        with pytest.raises(ValueError):
            Packet(serial, CommandType.INTERROGATE, 300)

    def test_payload_cap(self, serial):
        with pytest.raises(ValueError):
            Packet(serial, CommandType.TELEMETRY, 1, payload=bytes(300))

    def test_opcode_coercion(self, serial):
        p = Packet(serial, 0x10, 1)
        assert p.opcode is CommandType.INTERROGATE


class TestCodec:
    def test_encode_decode_round_trip(self, codec, serial):
        packet = Packet(serial, CommandType.SET_THERAPY, 42, payload=b"abcdef")
        assert codec.decode(codec.encode(packet)) == packet

    def test_round_trip_empty_payload(self, codec, serial):
        packet = Packet(serial, CommandType.SESSION_OPEN, 0)
        assert codec.decode(codec.encode(packet)) == packet

    def test_round_trip_max_payload(self, codec, serial):
        packet = Packet(serial, CommandType.TELEMETRY, 9, payload=bytes(255))
        assert codec.decode(codec.encode(packet)) == packet

    def test_encoded_length_matches_n_bits(self, codec, serial):
        packet = Packet(serial, CommandType.INTERROGATE, 7, payload=b"1234")
        assert len(codec.encode(packet)) == codec.n_bits(packet)

    def test_starts_with_preamble(self, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.ACK, 1))
        assert np.array_equal(bits[: len(DEFAULT_PREAMBLE_BITS)], DEFAULT_PREAMBLE_BITS)

    def test_any_single_bit_flip_breaks_crc(self, codec, serial, rng):
        """The checksum assumption of S3.1: any corrupted field kills the
        packet.  (Flips inside the preamble only affect sync, tested
        separately.)"""
        packet = Packet(serial, CommandType.SET_THERAPY, 3, payload=b"xy")
        bits = codec.encode(packet)
        n_pre = len(DEFAULT_PREAMBLE_BITS)
        for _ in range(40):
            corrupted = bits.copy()
            position = rng.integers(n_pre, len(bits))
            corrupted[position] ^= 1
            with pytest.raises(DecodeError):
                codec.decode(corrupted)

    def test_truncated_rejected(self, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))
        with pytest.raises(DecodeError):
            codec.decode(bits[:50])

    def test_bad_sync_rejected(self, codec, serial):
        bits = codec.encode(Packet(serial, CommandType.INTERROGATE, 1))
        bits[len(DEFAULT_PREAMBLE_BITS)] ^= 1
        with pytest.raises(DecodeError):
            codec.decode(bits)

    def test_unknown_opcode_rejected(self, codec, serial):
        packet = Packet(serial, CommandType.INTERROGATE, 1)
        raw = codec.encode(packet)
        # Surgically rewrite the opcode byte and fix the CRC so only the
        # opcode check can fail.
        from repro.protocol.crc import bits_to_bytes, bytes_to_bits, crc16_ccitt

        frame = bytearray(bits_to_bytes(raw[16:]))
        frame[1 + SERIAL_LENGTH] = 0x77  # not a CommandType
        body = bytes(frame[1 : 4 + SERIAL_LENGTH])
        crc = crc16_ccitt(body)
        frame[-2:] = crc.to_bytes(2, "big")
        rebuilt = np.concatenate([raw[:16], bytes_to_bits(bytes(frame))])
        with pytest.raises(DecodeError):
            codec.decode(rebuilt)

    def test_identifying_sequence_is_104_bits(self, codec, serial):
        """S7(a): preamble + sync + 10-byte serial."""
        sid = codec.identifying_sequence(serial)
        assert len(sid) == 104
        assert codec.header_bit_count() == 104

    def test_identifying_sequence_prefixes_every_packet(self, codec, serial):
        sid = codec.identifying_sequence(serial)
        for opcode in (CommandType.INTERROGATE, CommandType.TELEMETRY):
            bits = codec.encode(Packet(serial, opcode, 5, payload=b"zz"))
            assert sid.matches(bits, b_thresh=0)

    def test_different_serial_distinct_sid(self, codec, serial):
        other = bytes(reversed(range(10)))
        sid = codec.identifying_sequence(serial)
        bits = codec.encode(Packet(other, CommandType.INTERROGATE, 1))
        assert not sid.matches(bits, b_thresh=4)

    def test_sid_serial_length_checked(self, codec):
        with pytest.raises(ValueError):
            codec.identifying_sequence(b"abc")


class TestTableDrivenCRC:
    """The table path must agree with the bitwise reference everywhere."""

    def test_property_table_matches_bitwise(self):
        from repro.protocol.crc import _crc16_ccitt_bitwise

        rng = np.random.default_rng(17)
        for _ in range(200):
            length = int(rng.integers(0, 64))
            data = bytes(rng.integers(0, 256, size=length, dtype=np.uint8))
            assert crc16_ccitt(data) == _crc16_ccitt_bitwise(data)

    def test_batch_matches_scalar(self):
        from repro.protocol.crc import crc16_bits_batch

        rng = np.random.default_rng(23)
        bits = rng.integers(0, 2, size=(20, 8 * 11))
        batch = crc16_bits_batch(bits)
        assert batch.dtype == np.uint16
        for row, crc in zip(bits, batch):
            assert int(crc) == crc16_bits(row)

    def test_batch_rejects_ragged_length(self):
        from repro.protocol.crc import crc16_bits_batch

        with pytest.raises(ValueError):
            crc16_bits_batch(np.zeros((2, 7), dtype=int))

    def test_batch_rejects_non_binary(self):
        from repro.protocol.crc import crc16_bits_batch

        with pytest.raises(ValueError):
            crc16_bits_batch(np.full((2, 8), 3))

    def test_batch_rejects_1d(self):
        from repro.protocol.crc import crc16_bits_batch

        with pytest.raises(ValueError):
            crc16_bits_batch(np.zeros(8, dtype=int))
