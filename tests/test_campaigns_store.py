"""Result-store backends: parity, atomicity, scaling, and the cache CLI.

The two backends must be interchangeable behind ``ResultCache``: same
answers, same resume behaviour, same stats/prune surface.  The scaling
regression pins the membership-check contract -- one metadata query per
scenario, never a stat per key.
"""

import json
import logging
import os
import sqlite3

import pytest

from repro.obs.metrics import take_global

from repro.campaigns.cache import ResultCache
from repro.campaigns.spec import Scenario
from repro.campaigns.store import (
    FilesystemStore,
    SQLiteStore,
    make_store,
    resolve_backend,
)


def _scenario(**changes) -> Scenario:
    base = dict(
        name="store-test",
        kind="attack",
        location_indices=(1, 8),
        n_trials=2,
        seed=3,
    )
    base.update(changes)
    return Scenario(**base)


class TestBackendSelection:
    def test_default_is_filesystem(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert resolve_backend() == "filesystem"

    def test_env_selects_sqlite(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert resolve_backend() == "sqlite"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        assert resolve_backend("filesystem") == "filesystem"

    def test_unknown_backend_names_the_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        with pytest.raises(ValueError, match="REPRO_CACHE_BACKEND"):
            resolve_backend("mongodb")

    def test_make_store_maps_names_to_classes(self, tmp_path):
        assert isinstance(make_store(tmp_path, "filesystem"), FilesystemStore)
        assert isinstance(make_store(tmp_path, "sqlite"), SQLiteStore)


@pytest.mark.parametrize("backend", ["filesystem", "sqlite"])
class TestBackendParity:
    def test_round_trip(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        scenario = _scenario()
        coords = {"kind": "attack", "location": 1, "chunk": 0, "n_trials": 2}
        cache.put(scenario, "abc123", coords, {"wins": 1, "alarms": 0})
        assert cache.get(scenario, "abc123") == {"wins": 1, "alarms": 0}
        assert cache.get(scenario, "missing") is None

    def test_upsert_overwrites(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        scenario = _scenario()
        cache.put(scenario, "k", {}, {"wins": 1})
        cache.put(scenario, "k", {}, {"wins": 2})
        assert cache.get(scenario, "k") == {"wins": 2}

    def test_cached_keys_membership(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        scenario = _scenario()
        for key in ("a1", "b2", "c3"):
            cache.put(scenario, key, {"k": key}, {"wins": 0})
        assert cache.cached_keys(scenario, ["a1", "c3", "zz"]) == {"a1", "c3"}
        assert cache.cached_keys(_scenario(seed=99), ["a1"]) == set()

    def test_namespaces_isolated_by_scenario_hash(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        cache.put(_scenario(), "k", {}, {"wins": 1})
        assert cache.get(_scenario(seed=99), "k") is None

    def test_stats_counts_entries_and_names(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        scenario = _scenario()
        for key in ("a", "b"):
            cache.put(scenario, key, {}, {"wins": 0})
        stats = cache.stats()
        assert stats.backend == backend
        assert stats.entries == 2
        assert stats.bytes > 0
        (per_scenario,) = stats.scenarios
        assert per_scenario.scenario_hash == scenario.scenario_hash()
        assert per_scenario.name == "store-test"
        assert per_scenario.entries == 2

    def test_prune_by_namespace(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        keep, drop = _scenario(), _scenario(seed=99)
        cache.put(keep, "k", {}, {"wins": 0})
        cache.put(drop, "k", {}, {"wins": 0})
        removed = cache.prune([drop.scenario_hash()])
        assert removed == 1
        assert cache.get(keep, "k") is not None
        assert cache.get(drop, "k") is None

    def test_prune_all(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        cache.put(_scenario(), "k", {}, {"wins": 0})
        cache.put(_scenario(seed=99), "k", {}, {"wins": 0})
        assert cache.prune() == 2
        assert cache.stats().entries == 0

    def test_empty_cache_stats(self, tmp_path, backend):
        stats = ResultCache(tmp_path / "nothing", backend=backend).stats()
        assert stats.entries == 0
        assert stats.scenarios == ()


class TestFilesystemLayoutCompatibility:
    """The filesystem backend must keep the historical on-disk bytes."""

    def test_layout_matches_historical_shape(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = _scenario()
        cache.put(scenario, "deadbeef", {"c": 1}, {"wins": 2})
        directory = tmp_path / scenario.scenario_hash()
        body = json.loads((directory / "deadbeef.json").read_text())
        assert body == {"coords": {"c": 1}, "result": {"wins": 2}}
        manifest = json.loads((directory / "scenario.json").read_text())
        assert manifest["name"] == scenario.name
        assert manifest["payload"] == scenario.payload()

    def test_corrupt_entry_reads_as_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = _scenario()
        cache.put(scenario, "k", {}, {"wins": 1})
        path = tmp_path / scenario.scenario_hash() / "k.json"
        path.write_bytes(b"\xff not json")
        assert cache.get(scenario, "k") is None


class TestSQLiteDurability:
    def test_single_file_holds_everything(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        for seed in range(3):
            cache.put(_scenario(seed=seed), "k", {}, {"wins": seed})
        files = {p.name for p in tmp_path.iterdir() if p.is_file()}
        assert "results.sqlite" in files
        # No per-scenario directories appear.
        assert not any(p.is_dir() for p in tmp_path.iterdir())

    def test_wal_mode_enabled(self, tmp_path):
        store = SQLiteStore(tmp_path)
        store.put("hash", "k", {}, {"x": 1})
        mode = store._connect().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_reopen_sees_previous_writes(self, tmp_path):
        ResultCache(tmp_path, backend="sqlite").put(
            _scenario(), "k", {}, {"wins": 7}
        )
        fresh = ResultCache(tmp_path, backend="sqlite")
        assert fresh.get(_scenario(), "k") == {"wins": 7}

    def test_prune_reclaims_disk_space(self, tmp_path):
        """`cache prune` must shrink the on-disk footprint (main file
        plus WAL), not just delete rows inside full-size files
        (regression)."""

        def on_disk() -> int:
            return sum(p.stat().st_size for p in tmp_path.iterdir())

        store = SQLiteStore(tmp_path)
        blob = {"data": "x" * 4096}
        for i in range(200):
            store.put("hash", f"k{i:03d}", {}, blob)
        full_size = on_disk()
        assert store.prune() == 200
        assert on_disk() < full_size / 4

    def test_reads_never_create_the_database(self, tmp_path):
        """A status query on a fresh root must not leave results.sqlite
        (or WAL/SHM files) behind (regression)."""
        store = SQLiteStore(tmp_path / "fresh")
        assert store.get("hash", "k") is None
        assert store.cached_keys("hash", ["k"]) == set()
        assert store.namespace_names() == {}
        assert not (tmp_path / "fresh").exists()

    def test_read_on_unwritable_parent_reports_absent(self, tmp_path):
        """Reads under a read-only parent degrade to 'nothing cached',
        never a PermissionError traceback."""
        parent = tmp_path / "ro"
        parent.mkdir()
        parent.chmod(0o500)
        try:
            store = SQLiteStore(parent / "cache")
            assert store.get("hash", "k") is None
            assert store.cached_keys("hash", ["k"]) == set()
        finally:
            parent.chmod(0o700)

    def test_namespace_names_match_manifests(self, tmp_path):
        for backend in ("filesystem", "sqlite"):
            cache = ResultCache(tmp_path / backend, backend=backend)
            scenario = _scenario()
            cache.put(scenario, "k", {}, {"wins": 0})
            assert cache.store.namespace_names() == {
                scenario.scenario_hash(): "store-test"
            }

    def test_corrupt_row_reads_as_absent(self, tmp_path):
        store = SQLiteStore(tmp_path)
        store.put("hash", "k", {}, {"x": 1})
        store._connect().execute(
            "UPDATE units SET result = '{ not json' WHERE unit_key = 'k'"
        )
        assert store.get("hash", "k") is None


class TestCachedKeysScaling:
    """The satellite fix: membership is one listing, not a stat per key."""

    def test_filesystem_membership_is_one_scandir(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        scenario = _scenario()
        keys = [f"key{i:04d}" for i in range(200)]
        for key in keys:
            cache.put(scenario, key, {"k": key}, {"wins": 0})

        import pathlib

        import repro.campaigns.store as store_module

        scandir_calls = {"n": 0}
        real_scandir = os.scandir

        def counting_scandir(*args, **kwargs):
            scandir_calls["n"] += 1
            return real_scandir(*args, **kwargs)

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "cached_keys must not touch per-key metadata"
            )

        monkeypatch.setattr(store_module.os, "scandir", counting_scandir)
        monkeypatch.setattr(pathlib.Path, "exists", forbidden)
        monkeypatch.setattr(pathlib.Path, "stat", forbidden)
        monkeypatch.setattr(pathlib.Path, "read_text", forbidden)

        hit = cache.cached_keys(scenario, keys + ["absent"])
        assert hit == set(keys)
        assert scandir_calls["n"] == 1

    def test_sqlite_membership_is_one_query(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, backend="sqlite")
        scenario = _scenario()
        keys = [f"key{i:04d}" for i in range(100)]
        for key in keys:
            cache.put(scenario, key, {"k": key}, {"wins": 0})

        store = cache.store
        real_conn = store._connect()
        executes = {"n": 0}

        class CountingConn:
            def execute(self, sql, *args):
                executes["n"] += 1
                return real_conn.execute(sql, *args)

            def __getattr__(self, name):
                return getattr(real_conn, name)

        store._conn = CountingConn()
        hit = cache.cached_keys(scenario, keys)
        store._conn = real_conn
        assert hit == set(keys)
        assert executes["n"] == 1

    def test_runner_status_uses_the_fast_path(self, tmp_path, monkeypatch):
        """CampaignRunner.status answers from cached_keys, not get()."""
        from repro.campaigns import CampaignRunner

        scenario = _scenario()
        runner = CampaignRunner(scenario, cache_dir=tmp_path)
        runner.run()

        def forbidden_get(*args, **kwargs):
            raise AssertionError("status must not read unit payloads")

        monkeypatch.setattr(ResultCache, "get", forbidden_get)
        status = CampaignRunner(scenario, cache_dir=tmp_path).status()
        assert status.complete


class TestCacheCli:
    def _run(self, capsys, *argv) -> str:
        from repro.campaigns.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def _seed_cache(self, tmp_path) -> Scenario:
        scenario = _scenario()
        cache = ResultCache(tmp_path)
        cache.put(scenario, "k1", {}, {"wins": 1})
        cache.put(scenario, "k2", {}, {"wins": 0})
        return scenario

    def test_stats_text(self, capsys, tmp_path):
        self._seed_cache(tmp_path)
        out = self._run(
            capsys, "cache", "stats", "--cache-dir", str(tmp_path)
        )
        assert "store-test" in out
        assert "2 unit(s)" in out

    def test_stats_json(self, capsys, tmp_path):
        scenario = self._seed_cache(tmp_path)
        out = self._run(
            capsys, "cache", "stats", "--json", "--cache-dir", str(tmp_path)
        )
        payload = json.loads(out)
        assert payload["entries"] == 2
        assert payload["scenarios"][0]["hash"] == scenario.scenario_hash()

    def test_prune_by_scenario_name(self, capsys, tmp_path):
        self._seed_cache(tmp_path)
        out = self._run(
            capsys,
            "cache", "prune", "--scenario", "store-test",
            "--cache-dir", str(tmp_path),
        )
        assert "pruned 2 unit(s)" in out
        assert ResultCache(tmp_path).stats().entries == 0

    def test_prune_by_name_reads_manifests_not_units(
        self, capsys, tmp_path, monkeypatch
    ):
        """Name resolution for prune must not stat/read the unit
        entries -- at fleet unit counts that is a full metadata sweep
        (regression)."""
        self._seed_cache(tmp_path)
        from repro.campaigns.store import FilesystemStore

        def forbidden_stats(self):
            raise AssertionError("prune --scenario must not call stats()")

        monkeypatch.setattr(FilesystemStore, "stats", forbidden_stats)
        out = self._run(
            capsys,
            "cache", "prune", "--scenario", "store-test",
            "--cache-dir", str(tmp_path),
        )
        assert "pruned 2 unit(s)" in out

    def test_prune_all(self, capsys, tmp_path):
        self._seed_cache(tmp_path)
        out = self._run(
            capsys, "cache", "prune", "--all", "--cache-dir", str(tmp_path)
        )
        assert "pruned 2 unit(s)" in out

    def test_prune_requires_exactly_one_selector(self, tmp_path):
        from repro.campaigns.cli import main

        with pytest.raises(SystemExit):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main([
                "cache", "prune", "--all", "--scenario", "x",
                "--cache-dir", str(tmp_path),
            ])

    def test_prune_unknown_name_lists_cached(self, tmp_path, capsys):
        from repro.campaigns.cli import main

        self._seed_cache(tmp_path)
        with pytest.raises(SystemExit, match="store-test"):
            main([
                "cache", "prune", "--scenario", "nope",
                "--cache-dir", str(tmp_path),
            ])

    def test_stats_and_prune_cover_both_layouts(
        self, capsys, tmp_path, monkeypatch
    ):
        """Both backends can share one root; with no explicit backend
        selection the cache verbs must see (and prune) both layouts,
        not silently skip one (regression)."""
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        scenario = _scenario()
        ResultCache(tmp_path, backend="filesystem").put(
            scenario, "fs-unit", {}, {"wins": 1}
        )
        ResultCache(tmp_path, backend="sqlite").put(
            scenario, "sq-unit", {}, {"wins": 1}
        )
        out = self._run(
            capsys, "cache", "stats", "--json", "--cache-dir", str(tmp_path)
        )
        payload = json.loads(out)
        assert payload["entries"] == 2
        assert {s["backend"] for s in payload["stores"]} == {
            "filesystem", "sqlite",
        }
        out = self._run(
            capsys, "cache", "prune", "--all", "--cache-dir", str(tmp_path)
        )
        assert "pruned 2 unit(s)" in out
        assert ResultCache(tmp_path, backend="filesystem").stats().entries == 0
        assert ResultCache(tmp_path, backend="sqlite").stats().entries == 0

    def test_prune_by_name_covers_both_layouts(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        scenario = _scenario()
        ResultCache(tmp_path, backend="filesystem").put(
            scenario, "fs-unit", {}, {"wins": 1}
        )
        ResultCache(tmp_path, backend="sqlite").put(
            scenario, "sq-unit", {}, {"wins": 1}
        )
        out = self._run(
            capsys,
            "cache", "prune", "--scenario", "store-test",
            "--cache-dir", str(tmp_path),
        )
        assert "pruned 2 unit(s) from 2 namespace(s)" in out

    def test_run_with_sqlite_backend_flag(self, capsys, tmp_path):
        out = self._run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
        )
        assert "computed" in out
        assert (tmp_path / "results.sqlite").exists()

    def test_env_backend_selection(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
        self._run(
            capsys,
            "run", "attack-success-shielded",
            "--trials", "2", "--locations", "1",
            "--cache-dir", str(tmp_path),
        )
        assert (tmp_path / "results.sqlite").exists()


class TestBackendNameNormalization:
    """Explicit arguments get the same strip/lowercase the env does."""

    def test_explicit_choice_is_normalized(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert resolve_backend(" SQLite ") == "sqlite"
        assert resolve_backend("FILESYSTEM") == "filesystem"

    def test_env_value_is_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "  SQLITE\n")
        assert resolve_backend() == "sqlite"

    def test_blank_explicit_choice_falls_back_to_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert resolve_backend("   ") == "filesystem"


class _FlakyConnection:
    """Wraps a live connection, failing reads a set number of times."""

    def __init__(self, conn, exc: Exception, failures: int):
        self._conn = conn
        self._exc = exc
        self.failures = failures

    def execute(self, query, *args):
        if "SELECT result FROM units" in query and self.failures > 0:
            self.failures -= 1
            raise self._exc
        return self._conn.execute(query, *args)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class TestSQLiteGetErrorHandling:
    """The satellite fix: a failing read is an error, never a quiet miss."""

    _BUSY = sqlite3.OperationalError("database is locked")

    def _flaky_store(self, tmp_path, exc, failures):
        store = SQLiteStore(tmp_path)
        store.put("hash", "k", {}, {"wins": 3})
        store.BUSY_RETRY_S = 0.0
        store._conn = _FlakyConnection(store._conn, exc, failures)
        return store

    def test_busy_read_retries_once_and_succeeds(self, tmp_path):
        store = self._flaky_store(tmp_path, self._BUSY, failures=1)
        take_global()
        assert store.get("hash", "k") == {"wins": 3}
        counters = take_global().get("counters", {})
        assert counters.get("store.sqlite.busy_retry") == 1
        assert counters.get("store.sqlite.get_hit") == 1
        assert "store.sqlite.get_error" not in counters

    def test_persistent_busy_is_an_error_not_a_miss(self, tmp_path, caplog):
        store = self._flaky_store(tmp_path, self._BUSY, failures=2)
        take_global()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("hash", "k") is None
        counters = take_global().get("counters", {})
        assert counters.get("store.sqlite.get_error") == 1
        assert counters.get("store.sqlite.busy_retry") == 1
        assert "store.sqlite.get_miss" not in counters
        assert any("sqlite read failed" in r.message for r in caplog.records)

    def test_non_busy_error_is_not_retried(self, tmp_path, caplog):
        exc = sqlite3.OperationalError("no such table: units")
        store = self._flaky_store(tmp_path, exc, failures=1)
        take_global()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("hash", "k") is None
        counters = take_global().get("counters", {})
        assert counters.get("store.sqlite.get_error") == 1
        assert "store.sqlite.busy_retry" not in counters
        # One failure was budgeted and it was not consumed by a retry.
        assert store._conn.failures == 0

    def test_corrupt_row_counts_as_error_and_warns(self, tmp_path, caplog):
        store = SQLiteStore(tmp_path)
        store.put("hash", "k", {}, {"x": 1})
        store._connect().execute(
            "UPDATE units SET result = '{ not json' WHERE unit_key = 'k'"
        )
        take_global()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get("hash", "k") is None
        counters = take_global().get("counters", {})
        assert counters.get("store.sqlite.get_error") == 1
        assert "store.sqlite.get_miss" not in counters
        assert any("corrupt cache entry" in r.message for r in caplog.records)

    def test_plain_miss_still_counts_as_miss(self, tmp_path):
        store = SQLiteStore(tmp_path)
        store.put("hash", "k", {}, {"x": 1})
        take_global()
        assert store.get("hash", "absent") is None
        counters = take_global().get("counters", {})
        assert counters.get("store.sqlite.get_miss") == 1
        assert "store.sqlite.get_error" not in counters
