"""Tests for the GMSK modem (meteorological cross-traffic)."""

import numpy as np
import pytest

from repro.phy.gmsk import GMSKConfig, GMSKDemodulator, GMSKModulator
from repro.phy.signal import Waveform
from repro.phy.spectrum import band_power_fraction


class TestConfig:
    def test_defaults(self):
        cfg = GMSKConfig()
        assert cfg.samples_per_bit == 12
        assert cfg.bt_product == 0.5

    def test_rejects_bad_bt(self):
        with pytest.raises(ValueError):
            GMSKConfig(bt_product=2.0)

    def test_rejects_non_integer_oversampling(self):
        with pytest.raises(ValueError):
            GMSKConfig(bit_rate=48e3, sample_rate=100e3)

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            GMSKConfig(pulse_span_bits=0)


class TestModulator:
    def test_constant_envelope(self, rng):
        bits = rng.integers(0, 2, size=100)
        w = GMSKModulator().modulate(bits)
        assert np.allclose(np.abs(w.samples), 1.0)

    def test_length(self):
        w = GMSKModulator().modulate([0, 1, 0])
        assert len(w) == 3 * GMSKConfig().samples_per_bit

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GMSKModulator().modulate([0, 3])

    def test_spectrum_is_compact(self, rng):
        """GMSK's Gaussian filtering keeps energy near the carrier."""
        bits = rng.integers(0, 2, size=2000)
        w = GMSKModulator().modulate(bits)
        assert band_power_fraction(w, -60e3, 60e3) > 0.95

    def test_spectrally_distinct_from_imd_fsk(self, rng):
        """Cross-traffic must not look like the IMD's two-tone FSK."""
        bits = rng.integers(0, 2, size=2000)
        w = GMSKModulator().modulate(bits)
        near_fsk_tones = band_power_fraction(w, 40e3, 60e3) + band_power_fraction(
            w, -60e3, -40e3
        )
        assert near_fsk_tones < 0.2


class TestDemodulator:
    def test_clean_round_trip(self, rng):
        bits = rng.integers(0, 2, size=300)
        w = GMSKModulator().modulate(bits)
        decoded = GMSKDemodulator().demodulate(w)
        # The differential detector has no equaliser; allow rare ISI slips
        # at pulse-overlap boundaries.
        assert np.mean(decoded != bits) < 0.01

    def test_survives_phase_rotation(self, rng):
        bits = rng.integers(0, 2, size=200)
        w = GMSKModulator().modulate(bits).scaled(np.exp(0.7j))
        decoded = GMSKDemodulator().demodulate(w)
        assert np.mean(decoded != bits) < 0.01

    def test_ber_under_noise_reasonable(self, rng):
        bits = rng.integers(0, 2, size=2000)
        w = GMSKModulator().modulate(bits).with_noise(0.05, rng)
        assert GMSKDemodulator().bit_error_rate(w, bits) < 0.05

    def test_rejects_rate_mismatch(self):
        w = Waveform(np.ones(120), sample_rate=1e6)
        with pytest.raises(ValueError):
            GMSKDemodulator().demodulate(w)

    def test_rejects_overask(self):
        w = GMSKModulator().modulate([0, 1])
        with pytest.raises(ValueError):
            GMSKDemodulator().demodulate(w, n_bits=5)
