"""Interrupt/resume for adaptive validation: SIGKILL mid-round, resume from cache.

The adaptive scheduler's resume contract: stopping decisions are pure
functions of cached round-unit results, so a ``repro validate
--adaptive`` run killed (SIGKILL -- no cleanup, no atexit) part-way
through its rounds must, when re-run against the same cache, land on
bit-identical per-cell trial counts, estimates, and verdicts to a run
that was never interrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.statistical]

_REPO = Path(__file__).resolve().parent.parent

#: A run big enough that the kill reliably lands mid-flight: a tight
#: precision target on the passive grid forces many rounds of waveform
#: batches (a few seconds of work), and every completed unit is flushed
#: to the cache as it finishes.
_VALIDATE_ARGS = [
    "validate", "passive-ber-by-location",
    "--adaptive", "--precision", "0.003", "--round-size", "6",
    "--max-trials", "200",
]


def _spawn(cache_dir: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *_VALIDATE_ARGS,
         "--cache-dir", str(cache_dir), *extra],
        cwd=_REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _cell_fingerprint(payload: dict) -> list[tuple]:
    """The stopping decisions: per-cell trials and estimates, per-claim
    verdicts."""
    (scenario,) = payload["scenarios"]
    cells = []
    for expectation in scenario["expectations"]:
        for cell in expectation["cells"]:
            cells.append(
                (cell["axis"], cell["n"], cell["estimate"], cell["verdict"])
            )
    return cells


def _unit_files(cache_dir: Path) -> list[Path]:
    return [
        p
        for p in cache_dir.glob("*/*.json")
        if p.name != "scenario.json"
    ]


class TestSigkillResume:
    def test_killed_mid_round_resumes_to_identical_stopping_decisions(
        self, tmp_path
    ):
        interrupted_cache = tmp_path / "interrupted"
        pristine_cache = tmp_path / "pristine"

        # 1. Start the adaptive validate and SIGKILL it as soon as the
        #    first completed units hit the cache (mid-round by
        #    construction: the round holds 18 location cells).
        victim = _spawn(interrupted_cache)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if _unit_files(interrupted_cache):
                victim.kill()  # SIGKILL: no Python-level cleanup runs
                break
            time.sleep(0.01)
        victim.wait(timeout=60)
        # Overwhelmingly the kill lands first (the run takes seconds);
        # if the machine raced the process to completion the resume
        # assertions below still hold, just less interestingly.
        was_killed = victim.returncode == -signal.SIGKILL
        partial = len(_unit_files(interrupted_cache))
        assert partial > 0, "no units were flushed before the kill"

        # 2. Resume against the survivor cache; run the control in a
        #    fresh one.  Both to completion.
        resumed = _spawn(interrupted_cache, "--format", "json")
        control = _spawn(pristine_cache, "--format", "json")
        resumed_out, _ = resumed.communicate(timeout=300)
        control_out, _ = control.communicate(timeout=300)
        assert resumed.returncode == 0
        assert control.returncode == 0

        resumed_payload = json.loads(resumed_out)
        control_payload = json.loads(control_out)

        # 3. Bit-identical stopping decisions: same per-cell trial
        #    counts, same estimates, same verdicts, same round count.
        assert _cell_fingerprint(resumed_payload) == _cell_fingerprint(
            control_payload
        )
        (resumed_scenario,) = resumed_payload["scenarios"]
        (control_scenario,) = control_payload["scenarios"]
        assert resumed_scenario["rounds"] == control_scenario["rounds"]
        assert (
            resumed_scenario["trials_used"] == control_scenario["trials_used"]
        )
        assert resumed_payload["verdict"] == control_payload["verdict"]

        if was_killed:
            # The resumed run must actually have reused the survivor
            # units rather than recomputing the world.
            assert resumed_scenario["units"]["from_cache"] >= partial

        # 4. And a third pass over the now-complete cache is pure
        #    statistics: zero computed units.
        warm = _spawn(interrupted_cache, "--format", "json")
        warm_out, _ = warm.communicate(timeout=300)
        assert warm.returncode == 0
        (warm_scenario,) = json.loads(warm_out)["scenarios"]
        assert warm_scenario["units"]["computed"] == 0
        assert _cell_fingerprint(json.loads(warm_out)) == _cell_fingerprint(
            control_payload
        )
