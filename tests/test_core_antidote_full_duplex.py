"""Tests for the antidote math (eq. 1-5) and the full-duplex front end."""

import numpy as np
import pytest

from repro.core.antidote import (
    antidote_signal,
    estimate_channel,
    residual_gain,
    wideband_antidote,
)
from repro.core.config import ShieldConfig
from repro.core.full_duplex import FrontEndChannels, JammerCumReceiver
from repro.core.jamming import ShapedJammer
from repro.phy.fsk import FSKModulator, NoncoherentFSKDemodulator
from repro.phy.signal import Waveform, linear_to_db


def _jam(rng, n=4096):
    return ShapedJammer.matched_to_fsk(50e3, 100e3, 600e3, rng=rng).generate(n)


class TestAntidoteMath:
    def test_perfect_estimates_cancel_exactly(self, rng):
        """Eq. 1 + eq. 2: with true channels the sum is identically zero."""
        h_self = 0.9 * np.exp(0.3j)
        h_jr = 0.04 * np.exp(-1.1j)
        jam = _jam(rng)
        antidote = antidote_signal(jam, h_jr, h_self)
        received = jam.scaled(h_jr).samples + antidote.scaled(h_self).samples
        assert np.max(np.abs(received)) < 1e-12

    def test_residual_gain_zero_with_truth(self):
        h_self, h_jr = 1.0 + 0.2j, 0.05 - 0.01j
        assert abs(residual_gain(h_jr, h_self, h_jr, h_self)) < 1e-12

    def test_residual_matches_relative_error(self):
        """First-order: residual/|H_jr| ~ |eps_jr - eps_self|."""
        h_self, h_jr = 1.0, 0.05
        eps = 0.01
        residual = residual_gain(h_jr, h_self, h_jr * (1 + eps), h_self)
        assert abs(residual) / abs(h_jr) == pytest.approx(eps, rel=1e-6)

    def test_zero_h_self_rejected(self, rng):
        with pytest.raises(ValueError):
            antidote_signal(_jam(rng, 16), 0.1, 0.0)
        with pytest.raises(ValueError):
            residual_gain(0.1, 1.0, 0.1, 0.0)

    def test_off_antenna_cancellation_impossible(self, rng):
        """Eq. 3-5: at a remote location where both antennas attenuate
        equally, the jam survives the antidote almost untouched, because
        |H_jam->rec / H_self| << 1."""
        h_self = 1.0
        h_jr = 0.045  # -27 dB, the paper's USRP2 figure
        jam = _jam(rng)
        antidote = antidote_signal(jam, h_jr, h_self)
        # Remote location: comparable attenuation from both antennas.
        h_jam_to_l = 0.001
        h_rec_to_l = 0.001 * np.exp(0.2j)
        at_l = jam.scaled(h_jam_to_l).samples + antidote.scaled(h_rec_to_l).samples
        jam_only = jam.scaled(h_jam_to_l).samples
        # The jamming power at l is reduced by well under 1 dB.
        reduction_db = linear_to_db(
            np.mean(np.abs(jam_only) ** 2) / np.mean(np.abs(at_l) ** 2)
        )
        assert abs(reduction_db) < 1.0


class TestChannelEstimation:
    def test_noiseless_estimate_exact(self, rng):
        probe = _jam(rng, 2048)
        h = 0.7 * np.exp(0.9j)
        received = probe.scaled(h)
        est = estimate_channel(probe, received, noise_power=0.0)
        assert est.gain == pytest.approx(h, abs=1e-12)

    def test_noisy_estimate_error_scales_with_snr(self, rng):
        probe = _jam(rng, 8192)
        h = 1.0
        errors = []
        for noise in (1e-4, 1e-2):
            received = probe.scaled(h).with_noise(noise, rng)
            est = estimate_channel(probe, received, noise)
            errors.append(abs(est.gain - h))
        assert errors[0] < errors[1]

    def test_error_std_reported(self, rng):
        probe = _jam(rng, 1024)
        est = estimate_channel(probe, probe, noise_power=0.01)
        assert est.error_std > 0

    def test_validation(self, rng):
        probe = _jam(rng, 64)
        with pytest.raises(ValueError):
            estimate_channel(probe, _jam(rng, 32), 0.0)
        zero = Waveform(np.zeros(64), 600e3)
        with pytest.raises(ValueError):
            estimate_channel(zero, zero, 0.0)


class TestWidebandAntidote:
    def test_per_subcarrier_cancellation(self, rng):
        """S5's OFDM extension: cancelling each subcarrier independently
        cancels the whole wideband jam."""
        n = 64
        jam = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(2)
        h_jr = 0.05 * np.exp(1j * rng.uniform(0, 2 * np.pi, n))
        h_self = np.exp(1j * rng.uniform(0, 2 * np.pi, n))
        antidote = wideband_antidote(jam, h_jr, h_self)
        received = jam * h_jr + antidote * h_self
        assert np.max(np.abs(received)) < 1e-12

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            wideband_antidote(np.ones(4), np.ones(4), np.ones(3))
        with pytest.raises(ValueError):
            wideband_antidote(np.ones(5), np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            wideband_antidote(np.ones(4), np.ones(4), np.zeros(4))


class TestJammerCumReceiver:
    def test_front_end_ratio_matches_config(self, rng):
        channels = FrontEndChannels.draw(ShieldConfig(), rng)
        assert channels.ratio_db() == pytest.approx(-27.0, abs=0.5)

    def test_cancellation_near_32db_mean(self):
        """Fig. 7: 'the antidote signal reduces the jamming signal by
        32 dB on average'."""
        rng = np.random.default_rng(42)
        values = []
        for _ in range(150):
            fe = JammerCumReceiver(ShieldConfig(), rng=rng)
            fe.set_estimation_error()
            values.append(fe.cancellation_db(_jam(rng, 2048)))
        mean = float(np.mean(values))
        assert 29.0 < mean < 35.0

    def test_cancellation_cdf_support(self):
        """Fig. 7's CDF spans roughly 20-40 dB."""
        rng = np.random.default_rng(43)
        values = []
        for _ in range(200):
            fe = JammerCumReceiver(ShieldConfig(), rng=rng)
            fe.set_estimation_error()
            values.append(fe.cancellation_db(_jam(rng, 1024)))
        assert np.percentile(values, 5) > 18.0
        assert np.percentile(values, 95) < 50.0

    def test_better_estimates_cancel_more(self, rng):
        fe = JammerCumReceiver(ShieldConfig(), rng=rng)
        jam = _jam(rng, 2048)
        fe.set_estimation_error(relative_std=0.05)
        coarse = fe.cancellation_db(jam)
        fe.set_estimation_error(relative_std=0.001)
        fine = fe.cancellation_db(jam)
        assert fine > coarse + 15.0

    def test_receive_imd_through_own_jam(self, rng):
        """The headline full-duplex property: with the antidote on, the
        shield decodes the IMD cleanly under jamming that would bury it
        otherwise."""
        cfg = ShieldConfig()
        fe = JammerCumReceiver(cfg, rng=rng)
        fe.set_estimation_error()
        bits = rng.integers(0, 2, size=200)
        imd = FSKModulator().modulate(bits).scaled_to_power(1.0)
        # Jam received 20 dB above the IMD signal (at-antenna), i.e. the
        # transmitted jam is 20 dB + 27 dB over it.
        jam = _jam(rng, len(imd)).scaled_to_power(100.0 * 10 ** 2.7)
        rx = fe.received(jam, external=imd, noise_power=1e-6, use_digital=True)
        decoded = NoncoherentFSKDemodulator().demodulate(rx, n_bits=len(bits))
        assert np.mean(decoded != bits) < 0.01

    def test_without_antidote_jam_buries_signal(self, rng):
        cfg = ShieldConfig()
        fe = JammerCumReceiver(cfg, rng=rng)
        fe.set_estimation_error()
        bits = rng.integers(0, 2, size=400)
        imd = FSKModulator().modulate(bits).scaled_to_power(1.0)
        jam = _jam(rng, len(imd)).scaled_to_power(100.0 * 10 ** 2.7)
        rx = fe.received(jam, external=imd, use_antidote=False)
        decoded = NoncoherentFSKDemodulator().demodulate(rx, n_bits=len(bits))
        assert np.mean(decoded != bits) > 0.3

    def test_digital_stage_adds_configured_gain(self, rng):
        cfg = ShieldConfig(digital_cancellation_db=8.0)
        fe = JammerCumReceiver(cfg, rng=rng)
        fe.set_estimation_error()
        jam = _jam(rng, 2048)
        analog = fe.received(jam, use_digital=False).power()
        digital = fe.received(jam, use_digital=True).power()
        assert linear_to_db(analog / digital) == pytest.approx(8.0, abs=0.2)

    def test_negative_error_std_rejected(self, rng):
        fe = JammerCumReceiver(ShieldConfig(), rng=rng)
        with pytest.raises(ValueError):
            fe.set_estimation_error(relative_std=-0.1)
